package calib

import (
	"math"
	"testing"
	"time"
)

func sec(d time.Duration) float64 { return d.Seconds() }

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

func TestSizesAndGeometry(t *testing.T) {
	if got := Sizes(MM); len(got) != 8 || got[0] != 4096 || got[7] != 18432 {
		t.Fatalf("MM sizes = %v", got)
	}
	if got := Sizes(FFT); len(got) != 7 || got[0] != 2048 || got[6] != 16384 {
		t.Fatalf("FFT sizes = %v", got)
	}
	// Table III data volumes: MM 4096 → 64 MB per copy; FFT 2048 → 8 MB.
	if got := CopyBytes(MM, 4096); got != 64<<20 {
		t.Fatalf("MM copy bytes = %d, want 64 MiB", got)
	}
	if got := CopyBytes(FFT, 2048); got != 8<<20 {
		t.Fatalf("FFT copy bytes = %d, want 8 MiB", got)
	}
	if CopyCount(MM) != 3 || CopyCount(FFT) != 2 {
		t.Fatal("copy multipliers must be 3 (MM) and 2 (FFT)")
	}
	if InputCopies(MM) != 2 || InputCopies(FFT) != 1 {
		t.Fatal("input copy counts must be 2 (MM) and 1 (FFT)")
	}
	if ModuleBytes(MM) != 21486 || ModuleBytes(FFT) != 7852 {
		t.Fatal("module sizes must match Section IV-B")
	}
}

func TestCaseStudyString(t *testing.T) {
	if MM.String() != "MM" || FFT.String() != "FFT" {
		t.Fatal("case study names")
	}
	if CaseStudy(9).String() == "" {
		t.Fatal("unknown case study must format")
	}
}

func TestPublishedLookups(t *testing.T) {
	d, ok := PaperCPU(MM, 4096)
	if !ok {
		t.Fatal("MM CPU 4096 must exist")
	}
	approx(t, sec(d), 2.08, 1e-9, "MM CPU 4096")
	d, ok = PaperGPU(FFT, 16384)
	if !ok {
		t.Fatal("FFT GPU 16384 must exist")
	}
	approx(t, d.Seconds()*1e3, 403.0, 1e-6, "FFT GPU 16384 ms")
	d, ok = PaperMeasured(MM, "GigaE", 18432)
	if !ok {
		t.Fatal("MM GigaE 18432 must exist")
	}
	approx(t, sec(d), 97.65, 1e-9, "MM GigaE 18432")
	d, ok = PaperMeasured(FFT, "40GI", 2048)
	if !ok {
		t.Fatal("FFT 40GI 2048 must exist")
	}
	approx(t, d.Seconds()*1e3, 167.0, 1e-6, "FFT 40GI 2048 ms")
	d, ok = PaperFixed(MM, "40GI", 4096)
	if !ok {
		t.Fatal("MM fixed 40GI 4096 must exist")
	}
	approx(t, sec(d), 1.89, 1e-9, "MM fixed 40GI 4096")

	if _, ok := PaperCPU(MM, 5000); ok {
		t.Fatal("non-anchor size must report !ok")
	}
	if _, ok := PaperMeasured(MM, "Myr", 4096); ok {
		t.Fatal("Myr was never measured")
	}
	if _, ok := PaperFixed(MM, "10GE", 4096); ok {
		t.Fatal("only GigaE/40GI have fixed columns")
	}
}

func TestPaperEstimates(t *testing.T) {
	d, ok := PaperCrossEstimate(MM, "GigaE", 4096)
	if !ok {
		t.Fatal("cross estimate must exist")
	}
	approx(t, sec(d), 2.08, 1e-9, "Table IV est 40GI from GigaE model")
	e, ok := PaperCrossError(FFT, "GigaE", 2048)
	if !ok {
		t.Fatal("cross error must exist")
	}
	approx(t, e, 33.95, 1e-9, "Table IV FFT error")
	d, ok = PaperTargetEstimate(MM, "GigaE", "A-HT", 18432)
	if !ok {
		t.Fatal("target estimate must exist")
	}
	approx(t, sec(d), 64.40, 1e-9, "Table VI MM A-HT")
	d, ok = PaperTargetEstimate(FFT, "40GI", "Myr", 8192)
	if !ok {
		t.Fatal("target estimate must exist")
	}
	approx(t, d.Seconds()*1e3, 418.19, 1e-6, "Table VI FFT Myr")

	if _, ok := PaperTargetEstimate(MM, "GigaE", "GigaE", 4096); ok {
		t.Fatal("testbed networks are measured, not estimated")
	}
	if _, ok := PaperCrossEstimate(MM, "Myr", 4096); ok {
		t.Fatal("only testbed models exist")
	}
	if _, ok := PaperCrossError(MM, "bogus", 4096); ok {
		t.Fatal("bogus model must report !ok")
	}
	if len(TargetNetworks()) != 5 {
		t.Fatal("five target networks")
	}
}

// The decomposition must recompose exactly to the published aggregates at
// every anchor size.
func TestDecompositionRecomposesLocalGPU(t *testing.T) {
	for _, cs := range []CaseStudy{MM, FFT} {
		for _, size := range Sizes(cs) {
			want, _ := PaperGPU(cs, size)
			got := LocalInit(cs) + DataGenTime(cs, size) +
				time.Duration(CopyCount(cs))*PCIeTime(cs, size) +
				KernelTime(cs, size) + Mgmt
			if diff := math.Abs(sec(got) - sec(want)); diff > sec(want)*1e-6+1e-9 {
				t.Fatalf("%v size %d: components sum to %v, published GPU time %v", cs, size, got, want)
			}
		}
	}
}

func TestDecompositionRecomposesFixedTime(t *testing.T) {
	for _, cs := range []CaseStudy{MM, FFT} {
		for _, size := range Sizes(cs) {
			want, _ := PaperFixed(cs, "40GI", size)
			got := DataGenTime(cs, size) + MarshalTime(cs, size) +
				time.Duration(CopyCount(cs))*PCIeTime(cs, size) +
				KernelTime(cs, size) + Mgmt
			if diff := math.Abs(sec(got) - sec(want)); diff > sec(want)*1e-6+1e-9 {
				t.Fatalf("%v size %d: components sum to %v, published fixed time %v", cs, size, got, want)
			}
		}
	}
}

func TestComponentsPositiveEverywhere(t *testing.T) {
	for _, cs := range []CaseStudy{MM, FFT} {
		sizes := append([]int{16, 64, 256, 1000}, Sizes(cs)...)
		sizes = append(sizes, 3*Sizes(cs)[len(Sizes(cs))-1]/2)
		for _, size := range sizes {
			for name, d := range map[string]time.Duration{
				"cpu":     CPUTime(cs, size),
				"kernel":  KernelTime(cs, size),
				"marshal": MarshalTime(cs, size),
				"datagen": DataGenTime(cs, size),
				"pcie":    PCIeTime(cs, size),
			} {
				if d <= 0 {
					t.Fatalf("%v size %d: %s time %v must be positive", cs, size, name, d)
				}
			}
		}
	}
}

func TestComponentsMonotoneInSize(t *testing.T) {
	for _, cs := range []CaseStudy{MM, FFT} {
		prevKernel, prevCPU := time.Duration(0), time.Duration(0)
		for _, size := range Sizes(cs) {
			k, c := KernelTime(cs, size), CPUTime(cs, size)
			if k <= prevKernel || c <= prevCPU {
				t.Fatalf("%v: non-monotone component at size %d", cs, size)
			}
			prevKernel, prevCPU = k, c
		}
	}
}

func TestExtrapolationScalesByWork(t *testing.T) {
	// Below the smallest anchor, MM compute scales cubically.
	k1 := CPUTime(MM, 1024)
	k2 := CPUTime(MM, 2048)
	ratio := sec(k2) / sec(k1)
	approx(t, ratio, 8, 0.01, "CPU O(m³) extrapolation")
	// FFT scales linearly in the batch.
	f1 := CPUTime(FFT, 256)
	f2 := CPUTime(FFT, 512)
	approx(t, sec(f2)/sec(f1), 2, 0.01, "FFT O(n) extrapolation")
}

func TestLocalInitPerCaseStudy(t *testing.T) {
	if LocalInit(MM) != ContextInit {
		t.Fatal("MM pays the full context initialization")
	}
	if LocalInit(FFT) != 0 {
		t.Fatal("FFT times are warm-context; no init")
	}
}

// GPU wins at MM (compute-bound) and loses at FFT (transfer-bound): the
// paper's central eligibility observation must hold in the calibration.
func TestGPUEligibilityShape(t *testing.T) {
	for _, size := range Sizes(MM)[1:] { // beyond 4096, GPU beats CPU
		cpu, _ := PaperCPU(MM, size)
		gpuT, _ := PaperGPU(MM, size)
		if gpuT >= cpu {
			t.Fatalf("MM %d: GPU %v should beat CPU %v", size, gpuT, cpu)
		}
	}
	for _, size := range Sizes(FFT) {
		cpu, _ := PaperCPU(FFT, size)
		gpuT, _ := PaperGPU(FFT, size)
		if gpuT <= cpu {
			t.Fatalf("FFT %d: CPU %v should beat GPU %v", size, cpu, gpuT)
		}
	}
}
