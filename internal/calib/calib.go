// Package calib embeds the paper's published measurements and derives from
// them the component timing models that drive the simulation.
//
// The reproduction has no Tesla C1060, no MKL/FFTW install from 2010, and
// no physical GigaE/40GI testbed, so — per the substitution methodology in
// DESIGN.md — the hardware-dependent inputs are calibrated against the
// numbers the paper itself publishes (Tables IV and VI). Everything above
// this package is real code: the middleware executes its actual protocol,
// the models re-derive fixed times with linear regressions, and the
// cross-validation recomputes its error rates; only the per-size leaf costs
// (kernel time, PCIe, host marshaling, data generation) are calibration
// data rather than silicon.
//
// Decomposition. The paper defines the fixed time of a run as everything
// except the network payload transfers: CPU and GPU computation, middleware
// management, random data generation, and PCIe transfers. Using the
// 40GI-model fixed column as ground truth (the 40 Gbps wire is fast enough
// that its measured payload times match the bandwidth model, so its fixed
// column is the cleanest estimate of the network-independent cost), the
// components are:
//
//	kernel(size)  = gpuLocal(size) − init − pcie(size) − datagen(size) − mgmt
//	marshal(size) = fixed40GI(size) − gpuLocal(size) + init
//
// which by construction recompose to the published local-GPU and fixed
// times. init is the CUDA context creation delay for the MM study; the
// paper's FFT local-GPU times are warm-context measurements (they are far
// smaller than any cold start), so init is zero for FFT.
package calib

import (
	"fmt"
	"math"
	"time"

	"rcuda/internal/stats"
)

// CaseStudy identifies one of the paper's two case studies.
type CaseStudy int

// The two case studies of Section IV-B.
const (
	// MM is the single-precision matrix-matrix product C = A·B with
	// square matrices of dimension m (Volkov's SGEMM on the GPU, MKL on
	// the CPU).
	MM CaseStudy = iota
	// FFT is the batched 512-point single-precision complex 1-D FFT
	// (Volkov's FFT on the GPU, FFTW on the CPU); the size parameter is
	// the batch count n.
	FFT
)

// String implements fmt.Stringer.
func (cs CaseStudy) String() string {
	switch cs {
	case MM:
		return "MM"
	case FFT:
		return "FFT"
	default:
		return fmt.Sprintf("CaseStudy(%d)", int(cs))
	}
}

// Problem sizes evaluated in the paper.
var (
	mmSizes  = []int{4096, 6144, 8192, 10240, 12288, 14336, 16384, 18432}
	fftSizes = []int{2048, 4096, 6144, 8192, 10240, 12288, 16384}
)

// Sizes returns the paper's problem sizes for a case study: matrix
// dimensions for MM, batch counts for FFT.
func Sizes(cs CaseStudy) []int {
	switch cs {
	case MM:
		return append([]int(nil), mmSizes...)
	default:
		return append([]int(nil), fftSizes...)
	}
}

// CopyBytes returns the payload of one cudaMemcpy: 4m² bytes for MM
// (single-precision m×m matrices), 4096n for FFT (n transforms of 512
// 8-byte complex points).
func CopyBytes(cs CaseStudy, size int) int64 {
	switch cs {
	case MM:
		return 4 * int64(size) * int64(size)
	default:
		return 4096 * int64(size)
	}
}

// CopyCount returns the number of bulk memcpys per execution: 3 for MM
// (A and B in, C out), 2 for FFT (one per direction). This is the
// multiplier applied to Table III per-copy times.
func CopyCount(cs CaseStudy) int {
	if cs == MM {
		return 3
	}
	return 2
}

// InputCopies returns how many of the copies carry input data.
func InputCopies(cs CaseStudy) int {
	if cs == MM {
		return 2
	}
	return 1
}

// ModuleBytes returns the size of the case study's GPU module as reported
// in Section IV-B: 21,486 bytes for MM and 7,852 for FFT.
func ModuleBytes(cs CaseStudy) int {
	if cs == MM {
		return 21486
	}
	return 7852
}

// Testbed constants shared with the gpu package defaults (asserted equal in
// tests; calib stays dependency-light on purpose).
const (
	// PCIeMBps is the measured effective host-device bandwidth (MiB/s).
	PCIeMBps = 5743
	// ContextInit is the CUDA environment initialization delay hidden by
	// the rCUDA daemon's pre-initialized context.
	ContextInit = 800 * time.Millisecond
	// DataGenMBps models the host generating random input data (MiB/s).
	DataGenMBps = 1024
	// Mgmt is the size-independent middleware management overhead per
	// execution.
	Mgmt = 5 * time.Millisecond
)

// --- Published measurements (Tables IV and VI) -----------------------------

// Published per-size measured execution times. MM values are seconds, FFT
// values milliseconds, exactly as printed in the paper; accessors convert
// to time.Duration.
var (
	mmCPU   = []float64{2.08, 5.66, 11.99, 21.52, 35.45, 54.00, 78.87, 109.12}
	mmGPU   = []float64{2.40, 4.58, 8.12, 13.30, 20.37, 29.64, 41.43, 55.86}
	mmGigaE = []float64{3.64, 8.47, 15.60, 25.47, 38.39, 54.96, 74.13, 97.65}
	// Table IV's measured 40GI column. (Table VI's "40GI" column instead
	// repeats Table IV's GigaE fixed times — an apparent typesetting slip
	// in the original; Table IV is the authoritative cross-validation.)
	mm40GI       = []float64{2.03, 4.85, 9.34, 15.74, 24.42, 35.49, 49.93, 67.05}
	mmFixedGigaE = []float64{1.93, 4.62, 8.77, 14.79, 23.02, 34.03, 46.80, 63.06}
	mmFixed40GI  = []float64{1.89, 4.54, 8.78, 14.86, 23.15, 33.77, 47.68, 64.21}

	fftCPU        = []float64{41.67, 74.67, 115.67, 150.33, 187.33, 224.67, 299.00}
	fftGPU        = []float64{51.00, 102.33, 153.33, 201.67, 253.33, 304.67, 403.00}
	fftGigaE      = []float64{354.33, 555.67, 761.00, 964.33, 1167.67, 1371.33, 1782.00}
	fft40GI       = []float64{167.00, 226.00, 306.33, 379.67, 458.00, 537.67, 696.67}
	fftFixedGigaE = []float64{211.98, 270.97, 333.95, 394.94, 455.92, 517.24, 643.21}
	fftFixed40GI  = []float64{155.30, 202.59, 271.22, 332.85, 399.48, 467.45, 603.04}
)

// unit returns the duration of one printed time unit for the case study.
func unit(cs CaseStudy) time.Duration {
	if cs == MM {
		return time.Second
	}
	return time.Millisecond
}

// lookup finds the index of size in the case study's size list.
func lookup(cs CaseStudy, size int) (int, bool) {
	for i, s := range Sizes(cs) {
		if s == size {
			return i, true
		}
	}
	return 0, false
}

func published(cs CaseStudy, table []float64, size int) (time.Duration, bool) {
	i, ok := lookup(cs, size)
	if !ok {
		return 0, false
	}
	return time.Duration(table[i] * float64(unit(cs))), true
}

// PaperCPU returns the published local-CPU (8-core MKL/FFTW) time.
func PaperCPU(cs CaseStudy, size int) (time.Duration, bool) {
	return published(cs, pick(cs, mmCPU, fftCPU), size)
}

// PaperGPU returns the published local-GPU time.
func PaperGPU(cs CaseStudy, size int) (time.Duration, bool) {
	return published(cs, pick(cs, mmGPU, fftGPU), size)
}

// PaperMeasured returns the published remote execution time on a testbed
// network ("GigaE" or "40GI").
func PaperMeasured(cs CaseStudy, network string, size int) (time.Duration, bool) {
	switch network {
	case "GigaE":
		return published(cs, pick(cs, mmGigaE, fftGigaE), size)
	case "40GI":
		return published(cs, pick(cs, mm40GI, fft40GI), size)
	default:
		return 0, false
	}
}

// PaperFixed returns the published fixed time extracted under the given
// source-network model ("GigaE" or "40GI").
func PaperFixed(cs CaseStudy, model string, size int) (time.Duration, bool) {
	switch model {
	case "GigaE":
		return published(cs, pick(cs, mmFixedGigaE, fftFixedGigaE), size)
	case "40GI":
		return published(cs, pick(cs, mmFixed40GI, fftFixed40GI), size)
	default:
		return 0, false
	}
}

func pick(cs CaseStudy, mm, fft []float64) []float64 {
	if cs == MM {
		return mm
	}
	return fft
}

// --- Derived component models ----------------------------------------------

// scaledTable interpolates a per-size table linearly between anchors and
// extrapolates outside the anchor range by scaling the edge anchor with a
// work-ratio power law (e.g. m³ for GEMM compute, m² for data volumes), so
// small demo sizes get sane positive costs.
type scaledTable struct {
	curve    *stats.Curve
	loX, hiX float64
	loY, hiY float64
	exp      float64
}

func newScaledTable(sizes []int, ms []float64, exp float64) *scaledTable {
	pts := make([]stats.Point, len(sizes))
	for i, s := range sizes {
		pts[i] = stats.Point{X: float64(s), Y: ms[i]}
	}
	c, err := stats.NewCurve(pts)
	if err != nil {
		panic(fmt.Sprintf("calib: bad table: %v", err))
	}
	return &scaledTable{
		curve: c,
		loX:   pts[0].X, hiX: pts[len(pts)-1].X,
		loY: pts[0].Y, hiY: pts[len(pts)-1].Y,
		exp: exp,
	}
}

// evalMS returns the modeled milliseconds at the given size.
func (t *scaledTable) evalMS(size float64) float64 {
	switch {
	case size < t.loX:
		return t.loY * math.Pow(size/t.loX, t.exp)
	case size > t.hiX:
		return t.hiY * math.Pow(size/t.hiX, t.exp)
	default:
		return t.curve.Eval(size)
	}
}

func (t *scaledTable) eval(size int) time.Duration {
	return time.Duration(t.evalMS(float64(size)) * float64(time.Millisecond))
}

// toMS converts a published column to milliseconds.
func toMS(cs CaseStudy, col []float64) []float64 {
	out := make([]float64, len(col))
	scale := 1.0
	if cs == MM {
		scale = 1e3
	}
	for i, v := range col {
		out[i] = v * scale
	}
	return out
}

// pcieMS returns the PCIe time in ms for n bytes at the measured bandwidth.
func pcieMS(bytes int64) float64 {
	return float64(bytes) / (PCIeMBps * (1 << 20)) * 1e3
}

// totalPCIeMS is the PCIe cost of all bulk copies of one execution.
func totalPCIeMS(cs CaseStudy, size int) float64 {
	return float64(CopyCount(cs)) * pcieMS(CopyBytes(cs, size))
}

// datagenMS is the cost of generating the input data on the host.
func datagenMS(cs CaseStudy, size int) float64 {
	bytes := int64(InputCopies(cs)) * CopyBytes(cs, size)
	return float64(bytes) / (DataGenMBps * (1 << 20)) * 1e3
}

// initMS returns the context initialization cost included in the published
// local-GPU column: the full cold start for MM, zero for FFT (warm-context
// measurements; see the package comment).
func initMS(cs CaseStudy) float64 {
	if cs == MM {
		return float64(ContextInit) / float64(time.Millisecond)
	}
	return 0
}

var (
	cpuTables     = map[CaseStudy]*scaledTable{}
	kernelTables  = map[CaseStudy]*scaledTable{}
	marshalTables = map[CaseStudy]*scaledTable{}
)

func init() {
	for _, cs := range []CaseStudy{MM, FFT} {
		sizes := Sizes(cs)
		cpuMS := toMS(cs, pick(cs, mmCPU, fftCPU))
		gpuMS := toMS(cs, pick(cs, mmGPU, fftGPU))
		fixedMS := toMS(cs, pick(cs, mmFixed40GI, fftFixed40GI))
		compExp := 3.0 // GEMM is O(m³)
		volExp := 2.0  // data volumes are O(m²)
		if cs == FFT {
			compExp, volExp = 1.0, 1.0 // both linear in the batch count
		}
		kernelMS := make([]float64, len(sizes))
		marshalMS := make([]float64, len(sizes))
		for i, size := range sizes {
			kernelMS[i] = gpuMS[i] - initMS(cs) - totalPCIeMS(cs, size) -
				datagenMS(cs, size) - float64(Mgmt)/float64(time.Millisecond)
			marshalMS[i] = fixedMS[i] - gpuMS[i] + initMS(cs)
			if kernelMS[i] <= 0 || marshalMS[i] <= 0 {
				panic(fmt.Sprintf("calib: non-positive component at %v size %d: kernel %.2f ms, marshal %.2f ms",
					cs, size, kernelMS[i], marshalMS[i]))
			}
		}
		cpuTables[cs] = newScaledTable(sizes, cpuMS, compExp)
		kernelTables[cs] = newScaledTable(sizes, kernelMS, compExp)
		marshalTables[cs] = newScaledTable(sizes, marshalMS, volExp)
	}
}

// CPUTime models the 8-core CPU execution (MKL or FFTW) at any size.
func CPUTime(cs CaseStudy, size int) time.Duration { return cpuTables[cs].eval(size) }

// KernelTime models the GPU kernel execution at any size.
func KernelTime(cs CaseStudy, size int) time.Duration { return kernelTables[cs].eval(size) }

// MarshalTime models the middleware's host-side marshaling and buffer
// management per remote execution at any size.
func MarshalTime(cs CaseStudy, size int) time.Duration { return marshalTables[cs].eval(size) }

// DataGenTime models generating the random input data on the host.
func DataGenTime(cs CaseStudy, size int) time.Duration {
	return time.Duration(datagenMS(cs, size) * float64(time.Millisecond))
}

// PCIeTime models one host-device transfer of the case study's copy payload.
func PCIeTime(cs CaseStudy, size int) time.Duration {
	return time.Duration(pcieMS(CopyBytes(cs, size)) * float64(time.Millisecond))
}

// LocalInit returns the context initialization delay a local (non-rCUDA)
// execution of the case study pays.
func LocalInit(cs CaseStudy) time.Duration {
	return time.Duration(initMS(cs) * float64(time.Millisecond))
}
