package vclock

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSimStartsAtZero(t *testing.T) {
	c := NewSim()
	if got := c.Now(); got != 0 {
		t.Fatalf("new Sim clock at %v, want 0", got)
	}
}

func TestSimSleepAdvances(t *testing.T) {
	c := NewSim()
	c.Sleep(3 * time.Millisecond)
	c.Sleep(2 * time.Millisecond)
	if got, want := c.Now(), 5*time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSimNegativeSleepIgnored(t *testing.T) {
	c := NewSim()
	c.Sleep(time.Millisecond)
	c.Sleep(-time.Hour)
	if got, want := c.Now(), time.Millisecond; got != want {
		t.Fatalf("Now() = %v, want %v (negative sleep must be a no-op)", got, want)
	}
}

func TestSimAdvanceTo(t *testing.T) {
	c := NewSim()
	c.AdvanceTo(10 * time.Millisecond)
	if got, want := c.Now(), 10*time.Millisecond; got != want {
		t.Fatalf("after AdvanceTo: Now() = %v, want %v", got, want)
	}
	c.AdvanceTo(5 * time.Millisecond) // must not move backwards
	if got, want := c.Now(), 10*time.Millisecond; got != want {
		t.Fatalf("AdvanceTo moved clock backwards: %v, want %v", got, want)
	}
}

func TestSimConcurrentSleepsSum(t *testing.T) {
	c := NewSim()
	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Sleep(time.Microsecond)
		}()
	}
	wg.Wait()
	if got, want := c.Now(), n*time.Microsecond; got != want {
		t.Fatalf("concurrent sleeps: Now() = %v, want %v", got, want)
	}
}

func TestSimSleepPropertyMonotone(t *testing.T) {
	// Property: any sequence of sleeps leaves the clock at the sum of the
	// non-negative durations, and the clock never decreases.
	f := func(steps []int32) bool {
		c := NewSim()
		var want time.Duration
		prev := time.Duration(0)
		for _, s := range steps {
			c.Sleep(time.Duration(s))
			if s > 0 {
				want += time.Duration(s)
			}
			now := c.Now()
			if now < prev {
				return false
			}
			prev = now
		}
		return c.Now() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWallAdvances(t *testing.T) {
	c := NewWall()
	t0 := c.Now()
	c.Sleep(2 * time.Millisecond)
	t1 := c.Now()
	if t1-t0 < time.Millisecond {
		t.Fatalf("wall clock advanced only %v across a 2ms sleep", t1-t0)
	}
}

func TestWallZeroValueUsable(t *testing.T) {
	var c Wall
	if c.Now() > time.Second {
		t.Fatal("zero-value Wall clock should establish its epoch on first use")
	}
}

func TestStopwatch(t *testing.T) {
	c := NewSim()
	sw := NewStopwatch(c)
	c.Sleep(7 * time.Millisecond)
	if got, want := sw.Elapsed(), 7*time.Millisecond; got != want {
		t.Fatalf("Elapsed() = %v, want %v", got, want)
	}
	sw.Restart()
	c.Sleep(time.Millisecond)
	if got, want := sw.Elapsed(), time.Millisecond; got != want {
		t.Fatalf("after Restart: Elapsed() = %v, want %v", got, want)
	}
}

func TestStopwatchString(t *testing.T) {
	sw := NewStopwatch(NewSim())
	if sw.String() == "" {
		t.Fatal("String() must not be empty")
	}
}
