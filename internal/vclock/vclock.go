// Package vclock provides the notion of time used throughout rcuda-go.
//
// Every component that models or measures latency draws time from a Clock.
// Two implementations exist: Wall, which reads the real time (used when the
// middleware runs over an actual TCP network), and Sim, a deterministic
// virtual clock advanced explicitly by the simulation models. Running the
// full middleware against a Sim clock turns an end-to-end execution into a
// discrete-event simulation whose "measured" times are reproducible.
package vclock

import (
	"fmt"
	"sync"
	"time"
)

// Clock abstracts a monotonic time source that can also be slept on.
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current instant of this clock. For a Sim clock the
	// epoch is the moment the clock was created.
	Now() time.Duration
	// Sleep advances the clock by d. On a Wall clock this blocks the
	// calling goroutine; on a Sim clock it only moves virtual time.
	Sleep(d time.Duration)
}

// Wall is a Clock backed by the machine's monotonic wall time.
type Wall struct {
	epoch time.Time
	once  sync.Once
}

// NewWall returns a wall clock whose epoch is the moment of the call.
func NewWall() *Wall { return &Wall{epoch: time.Now()} }

// Now reports the elapsed real time since the clock's epoch.
func (w *Wall) Now() time.Duration {
	w.once.Do(func() {
		if w.epoch.IsZero() {
			w.epoch = time.Now()
		}
	})
	return time.Since(w.epoch)
}

// Sleep blocks the calling goroutine for d.
func (w *Wall) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Sim is a deterministic virtual clock. Sleeping advances virtual time
// without blocking. It is safe for concurrent use; concurrent sleepers
// serialize their advances, which models the strictly synchronous
// request/response execution the paper studies.
type Sim struct {
	mu  sync.Mutex
	now time.Duration
}

// NewSim returns a virtual clock positioned at zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Sleep advances virtual time by d. Negative durations are ignored.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	s.mu.Lock()
	s.now += d
	s.mu.Unlock()
}

// AdvanceTo moves the clock forward to instant t. It is a no-op if t is in
// the past; the clock never moves backwards.
func (s *Sim) AdvanceTo(t time.Duration) {
	s.mu.Lock()
	if t > s.now {
		s.now = t
	}
	s.mu.Unlock()
}

// Stopwatch measures an interval on an arbitrary Clock.
type Stopwatch struct {
	clock Clock
	start time.Duration
}

// NewStopwatch starts a stopwatch on c.
func NewStopwatch(c Clock) *Stopwatch {
	return &Stopwatch{clock: c, start: c.Now()}
}

// Restart resets the stopwatch's start to the current instant.
func (sw *Stopwatch) Restart() { sw.start = sw.clock.Now() }

// Elapsed reports the time elapsed since the stopwatch started.
func (sw *Stopwatch) Elapsed() time.Duration { return sw.clock.Now() - sw.start }

// String implements fmt.Stringer for debugging.
func (sw *Stopwatch) String() string {
	return fmt.Sprintf("stopwatch(%v)", sw.Elapsed())
}
