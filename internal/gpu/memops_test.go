package gpu

import (
	"bytes"
	"testing"
	"time"

	"rcuda/internal/vclock"
)

func TestMemsetFillsAndCharges(t *testing.T) {
	clk := vclock.NewSim()
	dev := New(Config{Clock: clk})
	ctx := dev.NewContextPreinitialized()
	const n = 1 << 20
	ptr, _ := ctx.Malloc(n)

	before := clk.Now()
	if err := ctx.Memset(ptr, 0xAB, n); err != nil {
		t.Fatal(err)
	}
	if got, want := clk.Now()-before, dev.MemsetTime(n); got != want {
		t.Fatalf("memset charged %v, want %v", got, want)
	}
	out, err := ctx.CopyToHost(ptr, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range out {
		if b != 0xAB {
			t.Fatalf("byte %d = %#x, want 0xAB", i, b)
		}
	}
	// Partial memset leaves the rest untouched.
	if err := ctx.Memset(ptr, 0, n/2); err != nil {
		t.Fatal(err)
	}
	out, _ = ctx.CopyToHost(ptr, n)
	if out[n/2-1] != 0 || out[n/2] != 0xAB {
		t.Fatal("partial memset boundary wrong")
	}
}

func TestMemsetBounds(t *testing.T) {
	dev := New(Config{Clock: vclock.NewSim()})
	ctx := dev.NewContextPreinitialized()
	ptr, _ := ctx.Malloc(100)
	if err := ctx.Memset(ptr, 1, 101); err == nil {
		t.Fatal("overrun memset must fail")
	}
	if err := ctx.Memset(0, 1, 1); err == nil {
		t.Fatal("null memset must fail")
	}
}

func TestDeviceToDeviceCopy(t *testing.T) {
	clk := vclock.NewSim()
	dev := New(Config{Clock: clk})
	ctx := dev.NewContextPreinitialized()
	data := bytes.Repeat([]byte{1, 2, 3, 4}, 256)
	src, _ := ctx.Malloc(uint32(len(data)))
	dst, _ := ctx.Malloc(uint32(len(data)))
	if err := ctx.CopyToDevice(src, data); err != nil {
		t.Fatal(err)
	}
	before := clk.Now()
	if err := ctx.CopyDeviceToDevice(dst, src, uint32(len(data))); err != nil {
		t.Fatal(err)
	}
	if got, want := clk.Now()-before, dev.DeviceCopyTime(int64(len(data))); got != want {
		t.Fatalf("D2D charged %v, want %v", got, want)
	}
	out, err := ctx.CopyToHost(dst, uint32(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("D2D copy corrupted data")
	}
}

func TestDeviceToDeviceOverlappingRanges(t *testing.T) {
	dev := New(Config{Clock: vclock.NewSim()})
	ctx := dev.NewContextPreinitialized()
	buf, _ := ctx.Malloc(16)
	_ = ctx.CopyToDevice(buf, []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	// Shift by 4 within the same allocation; the intermediate buffer
	// guarantees a clean copy despite the overlap.
	if err := ctx.CopyDeviceToDevice(buf+4, buf, 12); err != nil {
		t.Fatal(err)
	}
	out, _ := ctx.CopyToHost(buf, 16)
	want := []byte{0, 1, 2, 3, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	if !bytes.Equal(out, want) {
		t.Fatalf("overlapping D2D = %v, want %v", out, want)
	}
}

func TestDeviceToDeviceErrors(t *testing.T) {
	dev := New(Config{Clock: vclock.NewSim()})
	ctx := dev.NewContextPreinitialized()
	a, _ := ctx.Malloc(8)
	if err := ctx.CopyDeviceToDevice(a, 0, 8); err == nil {
		t.Fatal("null source must fail")
	}
	if err := ctx.CopyDeviceToDevice(0, a, 8); err == nil {
		t.Fatal("null destination must fail")
	}
	if err := ctx.CopyDeviceToDevice(a, a, 9); err == nil {
		t.Fatal("overrun must fail")
	}
}

func TestMemOpsOnDeadContext(t *testing.T) {
	dev := New(Config{Clock: vclock.NewSim()})
	ctx := dev.NewContextPreinitialized()
	ptr, _ := ctx.Malloc(8)
	_ = ctx.Destroy()
	if err := ctx.Memset(ptr, 1, 8); err == nil {
		t.Fatal("memset on dead context must fail")
	}
	if err := ctx.CopyDeviceToDevice(ptr, ptr, 8); err == nil {
		t.Fatal("D2D on dead context must fail")
	}
}

func TestProperties(t *testing.T) {
	dev := New(Config{Clock: vclock.NewSim()})
	p := dev.Properties()
	if p.Name == "" || p.MemoryBytes != DefaultMemoryBytes {
		t.Fatalf("properties %+v", p)
	}
	if p.CapabilityMajor != 1 || p.CapabilityMinor != 3 {
		t.Fatal("C1060 is compute capability 1.3")
	}
	if p.Multiprocessors != 30 || p.ClockMHz != 1296 {
		t.Fatal("C1060 has 30 SMs at 1296 MHz")
	}
}

func TestMemoryBandwidthTimes(t *testing.T) {
	dev := New(Config{Clock: vclock.NewSim()})
	// D2D touches every byte twice.
	if dev.DeviceCopyTime(1<<20) != 2*dev.MemsetTime(1<<20) {
		t.Fatal("device copy must cost twice a fill")
	}
	// Device memory is far faster than PCIe.
	if dev.MemsetTime(64<<20) >= dev.PCIeTime(64<<20) {
		t.Fatal("device-memory ops must beat PCIe transfers")
	}
	_ = time.Nanosecond
}
