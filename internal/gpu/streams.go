package gpu

import (
	"fmt"
	"time"
)

// This file implements CUDA streams, asynchronous copies, and events — the
// paper leaves asynchronous transfers "for future work"; this is that
// extension. The device models the Tesla C1060's engine layout: one copy
// (DMA) engine and one compute engine, so one transfer can overlap one
// kernel but transfers do not overlap each other.
//
// Timing model: asynchronous operations do not advance the clock at issue
// time. Each engine and each stream keeps a virtual "busy until" instant;
// an async operation starts at max(now, engine free, stream free) and its
// completion updates both. Synchronization points (stream/device/event
// waits) advance the clock to the relevant completion instant. On a clock
// without AdvanceTo (wall time), async operations degrade to synchronous
// execution — correct, just without modeled overlap.
//
// Functionally, the simulated work is performed immediately at issue time
// (device memory is host-backed and the protocol is in-order per context),
// so results are identical to the synchronous path; only timing differs.

// DefaultStream is CUDA's stream 0: operations on it are synchronous with
// respect to the host.
const DefaultStream uint32 = 0

// advancer is the optional clock capability async timing needs.
type advancer interface{ AdvanceTo(time.Duration) }

// engineKind selects which device engine an async operation occupies.
type engineKind int

const (
	copyEngine engineKind = iota
	execEngine
)

// timeline tracks the busy-until instants of the device engines and
// per-stream in-order queues of one context.
type timeline struct {
	engineDone [2]time.Duration
	streamDone map[uint32]time.Duration
	events     map[uint32]time.Duration
	nextStream uint32
	nextEvent  uint32
}

func newTimeline() *timeline {
	return &timeline{
		streamDone: map[uint32]time.Duration{DefaultStream: 0},
		events:     make(map[uint32]time.Duration),
		nextStream: 1,
		nextEvent:  1,
	}
}

// ErrInvalidStream is returned for operations on unknown streams.
var ErrInvalidStream = fmt.Errorf("gpu: invalid stream")

// ErrInvalidEvent is returned for operations on unknown events.
var ErrInvalidEvent = fmt.Errorf("gpu: invalid event")

// schedule books an async operation of the given cost on an engine and
// stream, returning its completion instant. The caller holds c.mu.
func (c *Context) schedule(eng engineKind, stream uint32, cost time.Duration) (time.Duration, error) {
	return c.scheduleAt(eng, stream, cost, c.dev.cfg.Clock.Now())
}

// scheduleAt books an async operation that cannot start before the given
// instant, returning its completion instant. Unlike schedule it does not
// consult the clock: the chunked-memcpy server books PCIe pushes at each
// chunk's network-arrival stamp while the sending client has already
// advanced the shared clock past it, so "now" would erase exactly the
// overlap being modeled. The caller holds c.mu.
func (c *Context) scheduleAt(eng engineKind, stream uint32, cost, notBefore time.Duration) (time.Duration, error) {
	tl := c.tl
	sdone, ok := tl.streamDone[stream]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrInvalidStream, stream)
	}
	start := notBefore
	if tl.engineDone[eng] > start {
		start = tl.engineDone[eng]
	}
	if sdone > start {
		start = sdone
	}
	if c.dev.cfg.Jitter != nil {
		cost = c.dev.cfg.Jitter.Perturb(cost)
	}
	end := start + cost
	tl.engineDone[eng] = end
	tl.streamDone[stream] = end
	return end, nil
}

// advanceTo moves the clock to t when the clock supports virtual advance;
// otherwise it is a no-op (wall clocks cannot jump).
func (c *Context) advanceTo(t time.Duration) {
	if adv, ok := c.dev.cfg.Clock.(advancer); ok {
		adv.AdvanceTo(t)
	}
}

// asyncCapable reports whether the clock supports deferred completion; when
// it does not, async operations must charge time immediately.
func (c *Context) asyncCapable() bool {
	_, ok := c.dev.cfg.Clock.(advancer)
	return ok
}

// StreamCreate allocates a new stream.
func (c *Context) StreamCreate() (uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return 0, err
	}
	id := c.tl.nextStream
	c.tl.nextStream++
	c.tl.streamDone[id] = 0
	return id, nil
}

// StreamDestroy releases a stream after implicitly synchronizing it, as
// cudaStreamDestroy does for pending work.
func (c *Context) StreamDestroy(stream uint32) error {
	if stream == DefaultStream {
		return fmt.Errorf("%w: cannot destroy the default stream", ErrInvalidStream)
	}
	if err := c.StreamSynchronize(stream); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tl.streamDone, stream)
	return nil
}

// StreamSynchronize blocks (advances the clock) until every operation
// issued to the stream has completed.
func (c *Context) StreamSynchronize(stream uint32) error {
	c.mu.Lock()
	if err := c.check(); err != nil {
		c.mu.Unlock()
		return err
	}
	done, ok := c.tl.streamDone[stream]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrInvalidStream, stream)
	}
	c.advanceTo(done)
	return nil
}

// Synchronize advances the clock past every pending operation of this
// context (cudaDeviceSynchronize).
func (c *Context) Synchronize() error {
	c.mu.Lock()
	if err := c.check(); err != nil {
		c.mu.Unlock()
		return err
	}
	var latest time.Duration
	for _, d := range c.tl.streamDone {
		if d > latest {
			latest = d
		}
	}
	for _, d := range c.tl.engineDone {
		if d > latest {
			latest = d
		}
	}
	c.mu.Unlock()
	c.advanceTo(latest)
	return nil
}

// CopyToDeviceAsync performs the copy functionally now and books its PCIe
// time on the copy engine and the stream.
func (c *Context) CopyToDeviceAsync(dst uint32, data []byte, stream uint32) error {
	if stream == DefaultStream || !c.asyncCapable() {
		return c.CopyToDevice(dst, data)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return err
	}
	c.dev.mu.Lock()
	region, err := c.dev.alloc.region(dst, uint32(len(data)))
	c.dev.mu.Unlock()
	if err != nil {
		return err
	}
	copy(region, data)
	_, err = c.schedule(copyEngine, stream, c.dev.PCIeTime(int64(len(data))))
	return err
}

// CopyToHostAsync reads device memory now and books the transfer time on
// the copy engine and the stream. The returned buffer is only guaranteed
// meaningful after the stream synchronizes, matching CUDA semantics.
func (c *Context) CopyToHostAsync(src uint32, size uint32, stream uint32) ([]byte, error) {
	if stream == DefaultStream || !c.asyncCapable() {
		return c.CopyToHost(src, size)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return nil, err
	}
	c.dev.mu.Lock()
	region, err := c.dev.alloc.region(src, size)
	c.dev.mu.Unlock()
	if err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, region)
	if _, err := c.schedule(copyEngine, stream, c.dev.PCIeTime(int64(size))); err != nil {
		return nil, err
	}
	return out, nil
}

// LaunchAsync executes a kernel on a stream: computation happens now,
// modeled time is booked on the compute engine. Stream 0 falls back to the
// synchronous Launch.
func (c *Context) LaunchAsync(name string, grid, block Dim3, shared uint32, params []byte, stream uint32) error {
	if stream == DefaultStream || !c.asyncCapable() {
		return c.Launch(name, grid, block, shared, params)
	}
	if err := validateLaunch(grid, block); err != nil {
		return err
	}
	c.mu.Lock()
	if err := c.check(); err != nil {
		c.mu.Unlock()
		return err
	}
	k, ok := c.kernels[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownKernel, name)
	}
	c.mu.Unlock()

	ec := &ExecContext{ctx: c, Grid: grid, Block: block, Shared: shared, Params: NewParamReader(params)}
	if err := k.Run(ec); err != nil {
		return fmt.Errorf("gpu: kernel %q: %w", name, err)
	}
	var cost time.Duration
	if k.Cost != nil {
		ec.Params = NewParamReader(params)
		cost = k.Cost(ec)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.schedule(execEngine, stream, cost)
	return err
}

// StreamReady reports whether every operation issued to the stream has
// completed by the current virtual instant, without advancing the clock
// (cudaStreamQuery).
func (c *Context) StreamReady(stream uint32) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return false, err
	}
	done, ok := c.tl.streamDone[stream]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrInvalidStream, stream)
	}
	return done <= c.dev.cfg.Clock.Now(), nil
}

// EventReady reports whether an event's recorded work has completed by the
// current virtual instant, without advancing the clock (cudaEventQuery).
func (c *Context) EventReady(event uint32) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return false, err
	}
	at, ok := c.tl.events[event]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrInvalidEvent, event)
	}
	return at <= c.dev.cfg.Clock.Now(), nil
}

// EventCreate allocates an event.
func (c *Context) EventCreate() (uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return 0, err
	}
	id := c.tl.nextEvent
	c.tl.nextEvent++
	c.tl.events[id] = 0
	return id, nil
}

// EventRecord captures the completion instant of all work issued so far to
// the stream (cudaEventRecord).
func (c *Context) EventRecord(event, stream uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return err
	}
	if _, ok := c.tl.events[event]; !ok {
		return fmt.Errorf("%w: %d", ErrInvalidEvent, event)
	}
	done, ok := c.tl.streamDone[stream]
	if !ok {
		return fmt.Errorf("%w: %d", ErrInvalidStream, stream)
	}
	now := c.dev.cfg.Clock.Now()
	if now > done {
		done = now
	}
	c.tl.events[event] = done
	return nil
}

// EventSynchronize advances the clock to the event's recorded instant.
func (c *Context) EventSynchronize(event uint32) error {
	c.mu.Lock()
	if err := c.check(); err != nil {
		c.mu.Unlock()
		return err
	}
	at, ok := c.tl.events[event]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrInvalidEvent, event)
	}
	c.advanceTo(at)
	return nil
}

// EventElapsed returns the modeled time between two recorded events
// (cudaEventElapsedTime).
func (c *Context) EventElapsed(start, end uint32) (time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return 0, err
	}
	s, ok := c.tl.events[start]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrInvalidEvent, start)
	}
	e, ok := c.tl.events[end]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrInvalidEvent, end)
	}
	return e - s, nil
}

// EventDestroy releases an event.
func (c *Context) EventDestroy(event uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return err
	}
	if _, ok := c.tl.events[event]; !ok {
		return fmt.Errorf("%w: %d", ErrInvalidEvent, event)
	}
	delete(c.tl.events, event)
	return nil
}
