package gpu

import "time"

// Device-side memory operations beyond host transfers: cudaMemset and
// device-to-device cudaMemcpy. Both execute inside device memory, so their
// cost follows the device memory bandwidth, not the PCIe link.

// DefaultMemoryMBps is the effective device-memory bandwidth of the Tesla
// C1060 (MiB/s): 102 GB/s theoretical, ~70% achievable on streaming
// operations.
const DefaultMemoryMBps = 73000

// MemsetTime models filling n bytes of device memory.
func (d *Device) MemsetTime(bytes int64) time.Duration {
	ms := float64(bytes) / (d.cfg.MemoryMBps * (1 << 20)) * 1e3
	return time.Duration(ms * float64(time.Millisecond))
}

// DeviceCopyTime models moving n bytes within device memory (one read plus
// one write of every byte).
func (d *Device) DeviceCopyTime(bytes int64) time.Duration {
	return 2 * d.MemsetTime(bytes)
}

// Memset fills [ptr, ptr+size) with value, advancing the clock by the
// modeled device-memory fill time (cudaMemset). Like other default-stream
// operations it waits out pending asynchronous work first.
func (c *Context) Memset(ptr uint32, value byte, size uint32) error {
	if err := c.Synchronize(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return err
	}
	c.dev.mu.Lock()
	region, err := c.dev.alloc.region(ptr, size)
	c.dev.mu.Unlock()
	if err != nil {
		return err
	}
	for i := range region {
		region[i] = value
	}
	c.dev.sleep(c.dev.MemsetTime(int64(size)))
	return nil
}

// CopyDeviceToDevice copies size bytes between two device regions
// (cudaMemcpy with cudaMemcpyDeviceToDevice), never crossing the PCIe bus.
// Overlapping ranges copy as if through an intermediate buffer, matching
// cudaMemcpy's undefined-overlap guarantee conservatively.
func (c *Context) CopyDeviceToDevice(dst, src, size uint32) error {
	if err := c.Synchronize(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return err
	}
	c.dev.mu.Lock()
	srcRegion, err := c.dev.alloc.region(src, size)
	if err != nil {
		c.dev.mu.Unlock()
		return err
	}
	dstRegion, err := c.dev.alloc.region(dst, size)
	if err != nil {
		c.dev.mu.Unlock()
		return err
	}
	tmp := make([]byte, size)
	copy(tmp, srcRegion)
	copy(dstRegion, tmp)
	c.dev.mu.Unlock()
	c.dev.sleep(c.dev.DeviceCopyTime(int64(size)))
	return nil
}

// Properties describes the simulated device, as cudaGetDeviceProperties
// reports it.
type Properties struct {
	Name            string
	MemoryBytes     uint64
	CapabilityMajor uint32
	CapabilityMinor uint32
	// Multiprocessors is the SM count (30 on the Tesla C1060).
	Multiprocessors uint32
	// ClockMHz is the shader clock (1296 MHz on the C1060).
	ClockMHz uint32
	// MemoryMBps is the effective device-memory bandwidth.
	MemoryMBps uint32
}

// Properties returns the device's description.
func (d *Device) Properties() Properties {
	return Properties{
		Name:            d.cfg.Name,
		MemoryBytes:     d.cfg.MemoryBytes,
		CapabilityMajor: d.cfg.CapabilityMajor,
		CapabilityMinor: d.cfg.CapabilityMinor,
		Multiprocessors: 30,
		ClockMHz:        1296,
		MemoryMBps:      uint32(d.cfg.MemoryMBps),
	}
}
