package gpu

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"rcuda/internal/vclock"
)

func newTestDevice() (*Device, *vclock.Sim) {
	clk := vclock.NewSim()
	return New(Config{Clock: clk}), clk
}

func TestDeviceDefaults(t *testing.T) {
	d := New(Config{})
	if d.MemoryBytes() != DefaultMemoryBytes {
		t.Fatalf("memory = %d, want %d", d.MemoryBytes(), uint64(DefaultMemoryBytes))
	}
	maj, min := d.Capability()
	if maj != 1 || min != 3 {
		t.Fatalf("capability %d.%d, want 1.3 (Tesla C1060)", maj, min)
	}
	if d.Name() == "" {
		t.Fatal("device must have a default name")
	}
}

func TestPCIeTimeMatchesMeasuredBandwidth(t *testing.T) {
	d, _ := newTestDevice()
	// 64 MiB at 5743 MB/s ≈ 11.1 ms.
	got := d.PCIeTime(64 << 20)
	want := 64.0 / 5743 * 1000
	if math.Abs(float64(got)/float64(time.Millisecond)-want) > 0.01 {
		t.Fatalf("PCIe time for 64 MiB = %v, want ~%.2f ms", got, want)
	}
}

func TestMallocFreeLifecycle(t *testing.T) {
	d, _ := newTestDevice()
	ctx := d.NewContextPreinitialized()
	a, err := ctx.Malloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if a == 0 {
		t.Fatal("device pointer must be non-zero")
	}
	b, err := ctx.Malloc(2000)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("distinct allocations share an address")
	}
	if d.Allocations() != 2 {
		t.Fatalf("allocations = %d, want 2", d.Allocations())
	}
	if err := ctx.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Free(a); err == nil {
		t.Fatal("double free must fail")
	}
	if err := ctx.Free(b); err != nil {
		t.Fatal(err)
	}
	if got := d.MemoryInUse(); got != 0 {
		t.Fatalf("memory in use after frees = %d, want 0", got)
	}
}

func TestMallocZeroSize(t *testing.T) {
	d, _ := newTestDevice()
	ctx := d.NewContextPreinitialized()
	if _, err := ctx.Malloc(0); !errors.Is(err, ErrZeroSize) {
		t.Fatalf("Malloc(0) = %v, want ErrZeroSize", err)
	}
}

func TestOutOfMemory(t *testing.T) {
	d := New(Config{MemoryBytes: 1 << 20, Clock: vclock.NewSim()})
	ctx := d.NewContextPreinitialized()
	if _, err := ctx.Malloc(2 << 20); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("over-allocation = %v, want ErrOutOfMemory", err)
	}
	// Fill, free, refill: space must be reusable.
	a, err := ctx.Malloc(512 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Malloc(768 << 10); !errors.Is(err, ErrOutOfMemory) {
		t.Fatal("second allocation should not fit")
	}
	if err := ctx.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Malloc(768 << 10); err != nil {
		t.Fatalf("allocation after free failed: %v", err)
	}
}

func TestCopyRoundTripAndTiming(t *testing.T) {
	d, clk := newTestDevice()
	ctx := d.NewContextPreinitialized()
	data := bytes.Repeat([]byte{1, 2, 3, 4}, 1<<18) // 1 MiB
	ptr, err := ctx.Malloc(uint32(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	before := clk.Now()
	if err := ctx.CopyToDevice(ptr, data); err != nil {
		t.Fatal(err)
	}
	got, err := ctx.CopyToHost(ptr, uint32(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("device memory round trip corrupted data")
	}
	elapsed := clk.Now() - before
	want := 2 * d.PCIeTime(int64(len(data)))
	if elapsed != want {
		t.Fatalf("two PCIe copies advanced clock by %v, want %v", elapsed, want)
	}
}

func TestCopyBoundsChecked(t *testing.T) {
	d, _ := newTestDevice()
	ctx := d.NewContextPreinitialized()
	ptr, _ := ctx.Malloc(100)
	if err := ctx.CopyToDevice(ptr, make([]byte, 101)); err == nil {
		t.Fatal("overrun write must fail")
	}
	if _, err := ctx.CopyToHost(ptr, 101); err == nil {
		t.Fatal("overrun read must fail")
	}
	if err := ctx.CopyToDevice(0, []byte{1}); err == nil {
		t.Fatal("write through null pointer must fail")
	}
	// Interior pointer reads are fine within bounds.
	if _, err := ctx.CopyToHost(ptr+10, 90); err != nil {
		t.Fatalf("interior read failed: %v", err)
	}
	if _, err := ctx.CopyToHost(ptr+10, 91); err == nil {
		t.Fatal("interior overrun must fail")
	}
}

func TestContextInitCost(t *testing.T) {
	d, clk := newTestDevice()
	before := clk.Now()
	_ = d.NewContext()
	if got := clk.Now() - before; got != DefaultInitTime {
		t.Fatalf("NewContext advanced clock by %v, want %v", got, DefaultInitTime)
	}
	before = clk.Now()
	_ = d.NewContextPreinitialized()
	if got := clk.Now() - before; got != 0 {
		t.Fatalf("pre-initialized context cost %v, want 0", got)
	}
}

func TestContextDestroyFreesMemory(t *testing.T) {
	d, _ := newTestDevice()
	ctx := d.NewContextPreinitialized()
	for i := 0; i < 5; i++ {
		if _, err := ctx.Malloc(1 << 20); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctx.Destroy(); err != nil {
		t.Fatal(err)
	}
	if got := d.MemoryInUse(); got != 0 {
		t.Fatalf("memory in use after Destroy = %d, want 0", got)
	}
	if _, err := ctx.Malloc(1); !errors.Is(err, ErrContextDestroyed) {
		t.Fatalf("Malloc on dead context = %v, want ErrContextDestroyed", err)
	}
	if err := ctx.Destroy(); err != nil {
		t.Fatal("Destroy must be idempotent")
	}
}

func TestContextsIsolated(t *testing.T) {
	d, _ := newTestDevice()
	c1 := d.NewContextPreinitialized()
	c2 := d.NewContextPreinitialized()
	p1, err := c1.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Free(p1); err == nil {
		t.Fatal("a context must not free another context's allocation")
	}
	// But destroying c1 releases it.
	if err := c1.Destroy(); err != nil {
		t.Fatal(err)
	}
	if d.MemoryInUse() != 0 {
		t.Fatal("c1's memory not released")
	}
}

func testModule(name string, binSize int, kernels ...*Kernel) *Module {
	return &Module{Name: name, Kernels: kernels, BinarySize: binSize}
}

func TestModuleBinaryRoundTrip(t *testing.T) {
	m := testModule("mm_test_roundtrip", 21486)
	img, err := m.Binary()
	if err != nil {
		t.Fatal(err)
	}
	if len(img) != 21486 {
		t.Fatalf("module image = %d bytes, want 21486", len(img))
	}
	name, err := ModuleNameFromBinary(img)
	if err != nil {
		t.Fatal(err)
	}
	if name != "mm_test_roundtrip" {
		t.Fatalf("extracted name %q", name)
	}
}

func TestModuleBinaryTooSmall(t *testing.T) {
	m := testModule("a_name_longer_than_the_size", 8)
	if _, err := m.Binary(); err == nil {
		t.Fatal("want error when BinarySize cannot hold the header")
	}
}

func TestModuleNameFromBadBinary(t *testing.T) {
	if _, err := ModuleNameFromBinary([]byte("bogus")); !errors.Is(err, ErrUnknownModule) {
		t.Fatalf("got %v, want ErrUnknownModule", err)
	}
}

func TestRegistryAndResolve(t *testing.T) {
	m := testModule("registry_test_mod", 256)
	RegisterModule(m)
	got, err := LookupModule("registry_test_mod")
	if err != nil || got != m {
		t.Fatalf("LookupModule: %v, %v", got, err)
	}
	img, _ := m.Binary()
	r, err := ResolveModule(img)
	if err != nil || r != m {
		t.Fatalf("ResolveModule: %v, %v", r, err)
	}
	// Image of wrong length must be rejected.
	if _, err := ResolveModule(img[:100]); err == nil {
		t.Fatal("short image must not resolve")
	}
	if _, err := LookupModule("nope"); err == nil {
		t.Fatal("unknown module must not resolve")
	}
	found := false
	for _, n := range RegisteredModules() {
		if n == "registry_test_mod" {
			found = true
		}
	}
	if !found {
		t.Fatal("RegisteredModules must list the module")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	RegisterModule(testModule("dup_mod", 64))
	RegisterModule(testModule("dup_mod", 64))
}

// A kernel that doubles a vector of uint32s in place, with a cost of 1 µs
// per element, exercises the full launch path.
func doublerKernel() *Kernel {
	return &Kernel{
		Name: "doubler",
		Run: func(ec *ExecContext) error {
			ptr, err := ec.Params.U32()
			if err != nil {
				return err
			}
			n, err := ec.Params.U32()
			if err != nil {
				return err
			}
			mem, err := ec.Mem(ptr, n*4)
			if err != nil {
				return err
			}
			for i := uint32(0); i < n; i++ {
				v := uint32(mem[i*4]) | uint32(mem[i*4+1])<<8 | uint32(mem[i*4+2])<<16 | uint32(mem[i*4+3])<<24
				v *= 2
				mem[i*4], mem[i*4+1], mem[i*4+2], mem[i*4+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			}
			return nil
		},
		Cost: func(ec *ExecContext) time.Duration {
			_, _ = ec.Params.U32()
			n, _ := ec.Params.U32()
			return time.Duration(n) * time.Microsecond
		},
	}
}

func TestLaunchExecutesAndCharges(t *testing.T) {
	d, clk := newTestDevice()
	ctx := d.NewContextPreinitialized()
	mod := testModule("launch_test_mod", 128, doublerKernel())
	if err := ctx.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	const n = 1000
	ptr, _ := ctx.Malloc(n * 4)
	in := make([]byte, n*4)
	for i := 0; i < n; i++ {
		in[i*4] = byte(i)
		in[i*4+1] = byte(i >> 8)
	}
	if err := ctx.CopyToDevice(ptr, in); err != nil {
		t.Fatal(err)
	}
	before := clk.Now()
	if err := ctx.Launch("doubler", Dim3{X: 4}, Dim3{X: 256}, 0, PackParams(ptr, n)); err != nil {
		t.Fatal(err)
	}
	if got := clk.Now() - before; got != n*time.Microsecond {
		t.Fatalf("launch advanced clock by %v, want %v", got, n*time.Microsecond)
	}
	out, err := ctx.CopyToHost(ptr, n*4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got := uint32(out[i*4]) | uint32(out[i*4+1])<<8
		if got != uint32(i)*2 {
			t.Fatalf("element %d = %d, want %d", i, got, i*2)
		}
	}
}

func TestLaunchUnknownKernel(t *testing.T) {
	d, _ := newTestDevice()
	ctx := d.NewContextPreinitialized()
	err := ctx.Launch("nope", Dim3{}, Dim3{}, 0, nil)
	if !errors.Is(err, ErrUnknownKernel) {
		t.Fatalf("got %v, want ErrUnknownKernel", err)
	}
}

func TestLoadModuleTwice(t *testing.T) {
	d, _ := newTestDevice()
	ctx := d.NewContextPreinitialized()
	mod := testModule("twice_mod", 64)
	if err := ctx.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	if err := ctx.LoadModule(mod); err == nil {
		t.Fatal("loading a module twice must fail")
	}
}

func TestDim3Count(t *testing.T) {
	if got := (Dim3{X: 16, Y: 16, Z: 1}).Count(); got != 256 {
		t.Fatalf("Count = %d, want 256", got)
	}
	if got := (Dim3{X: 5}).Count(); got != 5 {
		t.Fatalf("Count with zero Y/Z = %d, want 5", got)
	}
	if got := (Dim3{}).Count(); got != 1 {
		t.Fatalf("zero Dim3 Count = %d, want 1", got)
	}
}

func TestParamReader(t *testing.T) {
	r := NewParamReader(PackParams(7, 9))
	a, err := r.U32()
	if err != nil || a != 7 {
		t.Fatalf("first param: %d, %v", a, err)
	}
	b, err := r.U32()
	if err != nil || b != 9 {
		t.Fatalf("second param: %d, %v", b, err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", r.Remaining())
	}
	if _, err := r.U32(); err == nil {
		t.Fatal("reading past end must fail")
	}
}

// Property: any sequence of allocations within capacity yields
// non-overlapping, aligned regions.
func TestAllocatorNonOverlappingProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := newAllocator(1 << 24)
		type span struct{ lo, hi uint64 }
		var spans []span
		for _, s := range sizes {
			if s == 0 {
				continue
			}
			addr, err := a.alloc(uint32(s))
			if errors.Is(err, ErrOutOfMemory) {
				continue
			}
			if err != nil {
				return false
			}
			if addr%allocAlign != 0 {
				return false
			}
			lo, hi := uint64(addr), uint64(addr)+uint64(s)
			for _, sp := range spans {
				if lo < sp.hi && sp.lo < hi {
					return false // overlap
				}
			}
			spans = append(spans, span{lo, hi})
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: alloc/free cycles conserve the in-use accounting and always
// return us to zero.
func TestAllocatorConservationProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		a := newAllocator(1 << 26)
		var addrs []uint32
		for _, s := range sizes {
			if s == 0 {
				continue
			}
			addr, err := a.alloc(uint32(s))
			if err != nil {
				return errors.Is(err, ErrOutOfMemory)
			}
			addrs = append(addrs, addr)
		}
		for _, addr := range addrs {
			if err := a.free(addr); err != nil {
				return false
			}
		}
		return a.inUse() == 0 && a.count() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: data written to an allocation is read back intact regardless of
// neighboring allocations.
func TestDeviceMemoryIntegrityProperty(t *testing.T) {
	d, _ := newTestDevice()
	ctx := d.NewContextPreinitialized()
	f := func(a, b []byte) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		pa, err := ctx.Malloc(uint32(len(a)))
		if err != nil {
			return false
		}
		pb, err := ctx.Malloc(uint32(len(b)))
		if err != nil {
			return false
		}
		defer func() { _ = ctx.Free(pa); _ = ctx.Free(pb) }()
		if ctx.CopyToDevice(pa, a) != nil || ctx.CopyToDevice(pb, b) != nil {
			return false
		}
		ra, err := ctx.CopyToHost(pa, uint32(len(a)))
		if err != nil {
			return false
		}
		rb, err := ctx.CopyToHost(pb, uint32(len(b)))
		if err != nil {
			return false
		}
		return bytes.Equal(ra, a) && bytes.Equal(rb, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Stress: concurrent contexts allocating, copying, launching, and freeing
// on one device must stay consistent (run with -race).
func TestConcurrentContextsStress(t *testing.T) {
	d, _ := newTestDevice()
	mod := testModule("stress_mod", 128, doublerKernel())

	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			ctx := d.NewContextPreinitialized()
			defer func() { _ = ctx.Destroy() }()
			if err := ctx.LoadModule(mod); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 20; i++ {
				n := uint32(64 + (seed+i)%512)
				ptr, err := ctx.Malloc(n * 4)
				if err != nil {
					errs <- err
					return
				}
				if err := ctx.CopyToDevice(ptr, make([]byte, n*4)); err != nil {
					errs <- err
					return
				}
				if err := ctx.Launch("doubler", Dim3{X: 1}, Dim3{X: 64}, 0, PackParams(ptr, n)); err != nil {
					errs <- err
					return
				}
				if _, err := ctx.CopyToHost(ptr, n*4); err != nil {
					errs <- err
					return
				}
				if err := ctx.Free(ptr); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if d.MemoryInUse() != 0 {
		t.Fatalf("leaked %d bytes after concurrent stress", d.MemoryInUse())
	}
}

func TestDeviceAccessors(t *testing.T) {
	d, clk := newTestDevice()
	if d.Clock() != clk {
		t.Fatal("Clock() must return the configured clock")
	}
	ctx := d.NewContextPreinitialized()
	mod := testModule("accessor_mod", 64, &Kernel{
		Name: "dev_probe",
		Run: func(ec *ExecContext) error {
			if ec.Device() != d {
				return errors.New("kernel sees the wrong device")
			}
			return nil
		},
	})
	if err := ctx.LoadModule(mod); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Launch("dev_probe", Dim3{X: 1}, Dim3{X: 1}, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadModuleImage(t *testing.T) {
	d, _ := newTestDevice()
	ctx := d.NewContextPreinitialized()
	mod := testModule("image_load_mod", 256)
	RegisterModule(mod)
	img, err := mod.Binary()
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.LoadModuleImage(img); err != nil {
		t.Fatal(err)
	}
	if err := ctx.LoadModuleImage([]byte("garbage")); err == nil {
		t.Fatal("bogus image must fail")
	}
}

func TestValidateLaunchBounds(t *testing.T) {
	ok := []struct{ grid, block Dim3 }{
		{Dim3{X: 65535, Y: 65535}, Dim3{X: 512}},
		{Dim3{X: 1}, Dim3{X: 16, Y: 16, Z: 2}},
		{Dim3{}, Dim3{}},
	}
	for _, c := range ok {
		if err := validateLaunch(c.grid, c.block); err != nil {
			t.Fatalf("validateLaunch(%v, %v) = %v, want ok", c.grid, c.block, err)
		}
	}
	bad := []struct{ grid, block Dim3 }{
		{Dim3{X: 1}, Dim3{X: 513}},         // block X over limit
		{Dim3{X: 1}, Dim3{X: 1, Y: 513}},   // block Y over limit
		{Dim3{X: 1}, Dim3{X: 23, Y: 23}},   // 529 threads
		{Dim3{X: 65536}, Dim3{X: 1}},       // grid X over limit
		{Dim3{X: 1, Y: 65536}, Dim3{X: 1}}, // grid Y over limit
	}
	for _, c := range bad {
		if err := validateLaunch(c.grid, c.block); !errors.Is(err, ErrInvalidLaunch) {
			t.Fatalf("validateLaunch(%v, %v) = %v, want ErrInvalidLaunch", c.grid, c.block, err)
		}
	}
}

func TestJitterAppliesToDeviceSleeps(t *testing.T) {
	clk := vclock.NewSim()
	noisy := New(Config{Clock: clk, Jitter: fixedJitter{factor: 2}})
	ctx := noisy.NewContextPreinitialized()
	ptr, _ := ctx.Malloc(1 << 20)
	before := clk.Now()
	if err := ctx.CopyToDevice(ptr, make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if got, want := clk.Now()-before, 2*noisy.PCIeTime(1<<20); got != want {
		t.Fatalf("jittered copy charged %v, want doubled %v", got, want)
	}
}

// fixedJitter scales every duration by a constant factor.
type fixedJitter struct{ factor int }

func (j fixedJitter) Perturb(d time.Duration) time.Duration {
	return d * time.Duration(j.factor)
}
