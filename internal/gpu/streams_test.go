package gpu

import (
	"errors"
	"testing"
	"time"

	"rcuda/internal/vclock"
)

// costKernel returns a kernel with a fixed modeled cost and trivial Run.
func costKernel(name string, cost time.Duration) *Kernel {
	return &Kernel{
		Name: name,
		Run:  func(ec *ExecContext) error { return nil },
		Cost: func(ec *ExecContext) time.Duration { return cost },
	}
}

func streamTestCtx(t *testing.T, kernels ...*Kernel) (*Context, *vclock.Sim) {
	t.Helper()
	clk := vclock.NewSim()
	dev := New(Config{Clock: clk})
	ctx := dev.NewContextPreinitialized()
	if len(kernels) > 0 {
		if err := ctx.LoadModule(&Module{Name: "stream_mod_" + t.Name(), BinarySize: 64, Kernels: kernels}); err != nil {
			t.Fatal(err)
		}
	}
	return ctx, clk
}

func TestStreamLifecycle(t *testing.T) {
	ctx, _ := streamTestCtx(t)
	s, err := ctx.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	if s == DefaultStream {
		t.Fatal("new stream must not be the default stream")
	}
	if err := ctx.StreamSynchronize(s); err != nil {
		t.Fatal(err)
	}
	if err := ctx.StreamDestroy(s); err != nil {
		t.Fatal(err)
	}
	if err := ctx.StreamSynchronize(s); !errors.Is(err, ErrInvalidStream) {
		t.Fatalf("sync on destroyed stream = %v, want ErrInvalidStream", err)
	}
	if err := ctx.StreamDestroy(DefaultStream); err == nil {
		t.Fatal("destroying the default stream must fail")
	}
}

func TestAsyncCopyDoesNotBlockClock(t *testing.T) {
	ctx, clk := streamTestCtx(t)
	s, _ := ctx.StreamCreate()
	data := make([]byte, 1<<20)
	ptr, _ := ctx.Malloc(uint32(len(data)))

	before := clk.Now()
	if err := ctx.CopyToDeviceAsync(ptr, data, s); err != nil {
		t.Fatal(err)
	}
	if clk.Now() != before {
		t.Fatal("async copy must not advance the clock at issue time")
	}
	if err := ctx.StreamSynchronize(s); err != nil {
		t.Fatal(err)
	}
	want := ctx.dev.PCIeTime(int64(len(data)))
	if got := clk.Now() - before; got != want {
		t.Fatalf("stream sync advanced clock by %v, want %v", got, want)
	}
	// The data really landed.
	out, err := ctx.CopyToHost(ptr, uint32(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(data) {
		t.Fatal("data missing")
	}
}

func TestCopyKernelOverlap(t *testing.T) {
	// One copy engine + one compute engine: a kernel on stream B overlaps
	// a transfer on stream A, so the makespan is max, not sum.
	const kcost = 10 * time.Millisecond
	ctx, clk := streamTestCtx(t, costKernel("slow", kcost))
	sA, _ := ctx.StreamCreate()
	sB, _ := ctx.StreamCreate()

	data := make([]byte, 50<<20) // ~8.7 ms of PCIe
	ptr, _ := ctx.Malloc(uint32(len(data)))
	copyCost := ctx.dev.PCIeTime(int64(len(data)))

	before := clk.Now()
	if err := ctx.CopyToDeviceAsync(ptr, data, sA); err != nil {
		t.Fatal(err)
	}
	if err := ctx.LaunchAsync("slow", Dim3{X: 1}, Dim3{X: 1}, 0, nil, sB); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Synchronize(); err != nil {
		t.Fatal(err)
	}
	got := clk.Now() - before
	want := kcost // kernel (10 ms) > copy (~8.7 ms)
	if copyCost > want {
		want = copyCost
	}
	if got != want {
		t.Fatalf("overlapped makespan %v, want max(%v, %v)", got, kcost, copyCost)
	}
}

func TestCopiesSerializeOnOneEngine(t *testing.T) {
	// Two async copies on different streams still share the single copy
	// engine: total = sum.
	ctx, clk := streamTestCtx(t)
	sA, _ := ctx.StreamCreate()
	sB, _ := ctx.StreamCreate()
	data := make([]byte, 10<<20)
	pa, _ := ctx.Malloc(uint32(len(data)))
	pb, _ := ctx.Malloc(uint32(len(data)))

	before := clk.Now()
	if err := ctx.CopyToDeviceAsync(pa, data, sA); err != nil {
		t.Fatal(err)
	}
	if err := ctx.CopyToDeviceAsync(pb, data, sB); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Synchronize(); err != nil {
		t.Fatal(err)
	}
	want := 2 * ctx.dev.PCIeTime(int64(len(data)))
	if got := clk.Now() - before; got != want {
		t.Fatalf("two copies took %v, want serialized %v", got, want)
	}
}

func TestStreamOrderingWithinStream(t *testing.T) {
	// Operations on the same stream serialize even across engines.
	const kcost = 5 * time.Millisecond
	ctx, clk := streamTestCtx(t, costKernel("k", kcost))
	s, _ := ctx.StreamCreate()
	data := make([]byte, 10<<20)
	ptr, _ := ctx.Malloc(uint32(len(data)))

	before := clk.Now()
	if err := ctx.CopyToDeviceAsync(ptr, data, s); err != nil {
		t.Fatal(err)
	}
	if err := ctx.LaunchAsync("k", Dim3{X: 1}, Dim3{X: 1}, 0, nil, s); err != nil {
		t.Fatal(err)
	}
	if err := ctx.StreamSynchronize(s); err != nil {
		t.Fatal(err)
	}
	want := ctx.dev.PCIeTime(int64(len(data))) + kcost
	if got := clk.Now() - before; got != want {
		t.Fatalf("same-stream pipeline took %v, want serialized %v", got, want)
	}
}

func TestSyncOpsWaitForAsyncWork(t *testing.T) {
	const kcost = 7 * time.Millisecond
	ctx, clk := streamTestCtx(t, costKernel("k", kcost))
	s, _ := ctx.StreamCreate()
	if err := ctx.LaunchAsync("k", Dim3{X: 1}, Dim3{X: 1}, 0, nil, s); err != nil {
		t.Fatal(err)
	}
	ptr, _ := ctx.Malloc(64)
	before := clk.Now()
	if err := ctx.CopyToDevice(ptr, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if clk.Now()-before < kcost {
		t.Fatal("synchronous memcpy must wait out pending async work")
	}
}

func TestDefaultStreamIsSynchronous(t *testing.T) {
	ctx, clk := streamTestCtx(t)
	data := make([]byte, 1<<20)
	ptr, _ := ctx.Malloc(uint32(len(data)))
	before := clk.Now()
	if err := ctx.CopyToDeviceAsync(ptr, data, DefaultStream); err != nil {
		t.Fatal(err)
	}
	if got, want := clk.Now()-before, ctx.dev.PCIeTime(int64(len(data))); got != want {
		t.Fatalf("default-stream async copy charged %v, want synchronous %v", got, want)
	}
}

func TestEventsMeasureStreamWork(t *testing.T) {
	const kcost = 12 * time.Millisecond
	ctx, _ := streamTestCtx(t, costKernel("k", kcost))
	s, _ := ctx.StreamCreate()
	start, err := ctx.EventCreate()
	if err != nil {
		t.Fatal(err)
	}
	end, err := ctx.EventCreate()
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.EventRecord(start, s); err != nil {
		t.Fatal(err)
	}
	if err := ctx.LaunchAsync("k", Dim3{X: 1}, Dim3{X: 1}, 0, nil, s); err != nil {
		t.Fatal(err)
	}
	if err := ctx.EventRecord(end, s); err != nil {
		t.Fatal(err)
	}
	if err := ctx.EventSynchronize(end); err != nil {
		t.Fatal(err)
	}
	elapsed, err := ctx.EventElapsed(start, end)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != kcost {
		t.Fatalf("event elapsed %v, want %v", elapsed, kcost)
	}
	if err := ctx.EventDestroy(start); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.EventElapsed(start, end); !errors.Is(err, ErrInvalidEvent) {
		t.Fatalf("elapsed on destroyed event = %v, want ErrInvalidEvent", err)
	}
}

func TestEventErrors(t *testing.T) {
	ctx, _ := streamTestCtx(t)
	if err := ctx.EventRecord(99, DefaultStream); !errors.Is(err, ErrInvalidEvent) {
		t.Fatal("unknown event must fail")
	}
	e, _ := ctx.EventCreate()
	if err := ctx.EventRecord(e, 42); !errors.Is(err, ErrInvalidStream) {
		t.Fatal("unknown stream must fail")
	}
	if err := ctx.EventSynchronize(99); !errors.Is(err, ErrInvalidEvent) {
		t.Fatal("sync on unknown event must fail")
	}
	if err := ctx.EventDestroy(99); !errors.Is(err, ErrInvalidEvent) {
		t.Fatal("destroy of unknown event must fail")
	}
}

func TestAsyncOnWallClockDegradesToSync(t *testing.T) {
	dev := New(Config{Clock: vclock.NewWall()})
	ctx := dev.NewContextPreinitialized()
	s, _ := ctx.StreamCreate()
	ptr, _ := ctx.Malloc(64)
	// Must not hang or error: async degrades to synchronous semantics.
	if err := ctx.CopyToDeviceAsync(ptr, make([]byte, 64), s); err != nil {
		t.Fatal(err)
	}
	if err := ctx.StreamSynchronize(s); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncOnDeadContext(t *testing.T) {
	ctx, _ := streamTestCtx(t)
	s, _ := ctx.StreamCreate()
	_ = ctx.Destroy()
	if _, err := ctx.StreamCreate(); !errors.Is(err, ErrContextDestroyed) {
		t.Fatal("StreamCreate on dead context")
	}
	if err := ctx.StreamSynchronize(s); !errors.Is(err, ErrContextDestroyed) {
		t.Fatal("StreamSynchronize on dead context")
	}
	if err := ctx.Synchronize(); !errors.Is(err, ErrContextDestroyed) {
		t.Fatal("Synchronize on dead context")
	}
	if _, err := ctx.EventCreate(); !errors.Is(err, ErrContextDestroyed) {
		t.Fatal("EventCreate on dead context")
	}
}

func TestAsyncCopyToUnknownStream(t *testing.T) {
	ctx, _ := streamTestCtx(t)
	ptr, _ := ctx.Malloc(64)
	if err := ctx.CopyToDeviceAsync(ptr, make([]byte, 64), 42); !errors.Is(err, ErrInvalidStream) {
		t.Fatalf("copy to unknown stream = %v, want ErrInvalidStream", err)
	}
}

func TestAsyncCopyToHost(t *testing.T) {
	ctx, clk := streamTestCtx(t)
	s, _ := ctx.StreamCreate()
	data := make([]byte, 1<<20)
	for i := range data {
		data[i] = byte(i)
	}
	ptr, _ := ctx.Malloc(uint32(len(data)))
	if err := ctx.CopyToDevice(ptr, data); err != nil {
		t.Fatal(err)
	}
	before := clk.Now()
	out, err := ctx.CopyToHostAsync(ptr, uint32(len(data)), s)
	if err != nil {
		t.Fatal(err)
	}
	if clk.Now() != before {
		t.Fatal("async D2H must not advance the clock at issue time")
	}
	if err := ctx.StreamSynchronize(s); err != nil {
		t.Fatal(err)
	}
	if got, want := clk.Now()-before, ctx.dev.PCIeTime(int64(len(data))); got != want {
		t.Fatalf("async D2H charged %v on sync, want %v", got, want)
	}
	for i := range data {
		if out[i] != data[i] {
			t.Fatalf("byte %d corrupted", i)
		}
	}
	// Error paths: bad pointer and bad stream.
	if _, err := ctx.CopyToHostAsync(0, 4, s); err == nil {
		t.Fatal("null async D2H must fail")
	}
	if _, err := ctx.CopyToHostAsync(ptr, 4, 99); !errors.Is(err, ErrInvalidStream) {
		t.Fatalf("bad stream async D2H = %v", err)
	}
	// Default stream degrades to synchronous.
	if _, err := ctx.CopyToHostAsync(ptr, 4, DefaultStream); err != nil {
		t.Fatal(err)
	}
}

func TestStreamAndEventQueries(t *testing.T) {
	const kcost = 10 * time.Millisecond
	ctx, clk := streamTestCtx(t, costKernel("k", kcost))
	s, _ := ctx.StreamCreate()
	e, _ := ctx.EventCreate()

	ready, err := ctx.StreamReady(s)
	if err != nil || !ready {
		t.Fatalf("idle stream ready = %v, %v", ready, err)
	}
	if err := ctx.LaunchAsync("k", Dim3{X: 1}, Dim3{X: 1}, 0, nil, s); err != nil {
		t.Fatal(err)
	}
	if err := ctx.EventRecord(e, s); err != nil {
		t.Fatal(err)
	}
	// The kernel's completion sits in the virtual future.
	ready, err = ctx.StreamReady(s)
	if err != nil || ready {
		t.Fatalf("busy stream ready = %v, %v", ready, err)
	}
	ready, err = ctx.EventReady(e)
	if err != nil || ready {
		t.Fatalf("pending event ready = %v, %v", ready, err)
	}
	// Advance past the kernel: both become ready without synchronizing.
	clk.Sleep(kcost)
	ready, err = ctx.StreamReady(s)
	if err != nil || !ready {
		t.Fatalf("drained stream ready = %v, %v", ready, err)
	}
	ready, err = ctx.EventReady(e)
	if err != nil || !ready {
		t.Fatalf("fired event ready = %v, %v", ready, err)
	}
	// Error paths.
	if _, err := ctx.StreamReady(99); !errors.Is(err, ErrInvalidStream) {
		t.Fatal("bad stream query")
	}
	if _, err := ctx.EventReady(99); !errors.Is(err, ErrInvalidEvent) {
		t.Fatal("bad event query")
	}
}
