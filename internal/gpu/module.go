package gpu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kernel is one device function. Run performs the actual computation on the
// host-backed device memory (so results are numerically real and testable);
// Cost reports the modeled device execution time by which the simulation
// clock advances (so reported performance follows the calibrated hardware
// profile rather than the Go implementation's speed).
type Kernel struct {
	Name string
	Run  func(ec *ExecContext) error
	Cost func(ec *ExecContext) time.Duration
}

// Module is a loadable GPU module: a named set of kernels plus an opaque
// binary image whose size is what travels in the initialization message
// (21,486 bytes for the paper's MM module, 7,852 for FFT).
type Module struct {
	Name    string
	Kernels []*Kernel
	// BinarySize is the size of the module image in bytes.
	BinarySize int
}

// moduleMagic prefixes every synthesized module image.
var moduleMagic = []byte("RCUDAMOD")

// Binary synthesizes the module's wire image: magic, a length-prefixed
// module name (how the server resolves the module on load), and padding up
// to BinarySize, standing in for the kernel code and statically allocated
// variables of a real .cubin.
func (m *Module) Binary() ([]byte, error) {
	need := len(moduleMagic) + 4 + len(m.Name)
	if m.BinarySize < need {
		return nil, fmt.Errorf("gpu: module %q BinarySize %d below header size %d",
			m.Name, m.BinarySize, need)
	}
	img := make([]byte, 0, m.BinarySize)
	img = append(img, moduleMagic...)
	img = binary.LittleEndian.AppendUint32(img, uint32(len(m.Name)))
	img = append(img, m.Name...)
	return append(img, make([]byte, m.BinarySize-need)...), nil
}

// ErrUnknownModule is returned when a module image cannot be resolved.
var ErrUnknownModule = errors.New("gpu: unknown module image")

// ModuleNameFromBinary extracts the module name embedded in an image.
func ModuleNameFromBinary(img []byte) (string, error) {
	if len(img) < len(moduleMagic)+4 || string(img[:len(moduleMagic)]) != string(moduleMagic) {
		return "", ErrUnknownModule
	}
	n := int(binary.LittleEndian.Uint32(img[len(moduleMagic):]))
	if len(img) < len(moduleMagic)+4+n {
		return "", ErrUnknownModule
	}
	return string(img[len(moduleMagic)+4 : len(moduleMagic)+4+n]), nil
}

// registry is the global module registry, populated by kernel providers
// (package kernels) from init functions, in the manner of image format or
// database/sql driver registration.
var registry = struct {
	sync.RWMutex
	mods map[string]*Module
}{mods: make(map[string]*Module)}

// RegisterModule makes a module loadable by name. It panics on duplicate
// registration, which indicates conflicting providers.
func RegisterModule(m *Module) {
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.mods[m.Name]; dup {
		panic(fmt.Sprintf("gpu: duplicate module registration %q", m.Name))
	}
	registry.mods[m.Name] = m
}

// LookupModule returns a registered module by name.
func LookupModule(name string) (*Module, error) {
	registry.RLock()
	defer registry.RUnlock()
	m, ok := registry.mods[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModule, name)
	}
	return m, nil
}

// RegisteredModules lists registered module names, sorted.
func RegisteredModules() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.mods))
	for n := range registry.mods {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ResolveModule resolves a module image received over the wire to its
// registered module.
func ResolveModule(img []byte) (*Module, error) {
	name, err := ModuleNameFromBinary(img)
	if err != nil {
		return nil, err
	}
	m, err := LookupModule(name)
	if err != nil {
		return nil, err
	}
	if want, _ := m.Binary(); len(img) != len(want) {
		return nil, fmt.Errorf("gpu: module %q image is %d bytes, registered size %d",
			name, len(img), len(want))
	}
	return m, nil
}

// ParamReader decodes a kernel's packed little-endian parameter block, the
// way device code reads its parameter stack.
type ParamReader struct {
	buf []byte
	off int
}

// NewParamReader wraps a packed parameter block.
func NewParamReader(params []byte) *ParamReader { return &ParamReader{buf: params} }

// U32 reads the next 32-bit parameter (also used for device pointers).
func (r *ParamReader) U32() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, fmt.Errorf("gpu: parameter block exhausted at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

// Remaining reports unread parameter bytes.
func (r *ParamReader) Remaining() int { return len(r.buf) - r.off }

// PackParams packs 32-bit parameters the way the client marshals them.
func PackParams(vals ...uint32) []byte {
	out := make([]byte, 0, 4*len(vals))
	for _, v := range vals {
		out = binary.LittleEndian.AppendUint32(out, v)
	}
	return out
}
