package gpu

import (
	"testing"
	"time"

	"rcuda/internal/vclock"
)

func BenchmarkMallocFree(b *testing.B) {
	dev := New(Config{Clock: vclock.NewSim()})
	ctx := dev.NewContextPreinitialized()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ptr, err := ctx.Malloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := ctx.Free(ptr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCopyToDevice1MiB(b *testing.B) {
	dev := New(Config{Clock: vclock.NewSim()})
	ctx := dev.NewContextPreinitialized()
	data := make([]byte, 1<<20)
	ptr, err := ctx.Malloc(uint32(len(data)))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctx.CopyToDevice(ptr, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLaunchDispatch(b *testing.B) {
	dev := New(Config{Clock: vclock.NewSim()})
	ctx := dev.NewContextPreinitialized()
	mod := &Module{Name: "bench_mod", BinarySize: 64, Kernels: []*Kernel{{
		Name: "noop",
		Run:  func(*ExecContext) error { return nil },
		Cost: func(*ExecContext) time.Duration { return time.Microsecond },
	}}}
	if err := ctx.LoadModule(mod); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := ctx.Launch("noop", Dim3{X: 1}, Dim3{X: 1}, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAsyncScheduling(b *testing.B) {
	dev := New(Config{Clock: vclock.NewSim()})
	ctx := dev.NewContextPreinitialized()
	data := make([]byte, 4096)
	ptr, err := ctx.Malloc(uint32(len(data)))
	if err != nil {
		b.Fatal(err)
	}
	s, err := ctx.StreamCreate()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctx.CopyToDeviceAsync(ptr, data, s); err != nil {
			b.Fatal(err)
		}
	}
	if err := ctx.StreamSynchronize(s); err != nil {
		b.Fatal(err)
	}
}
