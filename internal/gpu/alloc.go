package gpu

import (
	"errors"
	"fmt"
	"sort"
)

// Allocation errors.
var (
	ErrOutOfMemory   = errors.New("gpu: out of device memory")
	ErrInvalidDevPtr = errors.New("gpu: invalid device pointer")
	ErrZeroSize      = errors.New("gpu: zero-size allocation")
)

// allocAlign is the allocation granularity. The CUDA runtime guarantees at
// least 256-byte alignment for cudaMalloc.
const allocAlign = 256

// nullGuard keeps device address 0 unallocated so a zero pointer is always
// invalid, as on real hardware.
const nullGuard = allocAlign

// block is one allocated region of the device address space.
type block struct {
	addr uint32
	size uint32 // requested size
	data []byte // backing store
}

// allocator is a first-fit allocator over a 32-bit device address space.
// It is not safe for concurrent use; the Device serializes access.
type allocator struct {
	total  uint64 // device memory capacity in bytes
	used   uint64
	blocks []*block // sorted by addr
}

func newAllocator(total uint64) *allocator {
	return &allocator{total: total}
}

// roundUp rounds n up to the allocation granularity.
func roundUp(n uint32) uint64 {
	return (uint64(n) + allocAlign - 1) &^ (allocAlign - 1)
}

// AllocCharge returns the device bytes a request of the given size actually
// occupies once rounded to the allocation granularity. Accounting layers
// (per-session quotas in the rCUDA server) charge this amount so their
// bookkeeping matches the allocator's inUse figure exactly.
func AllocCharge(size uint32) uint64 { return roundUp(size) }

// alloc reserves size bytes and returns the device address of the region.
func (a *allocator) alloc(size uint32) (uint32, error) {
	if size == 0 {
		return 0, ErrZeroSize
	}
	need := roundUp(size)
	if a.used+need > a.total {
		return 0, fmt.Errorf("%w: %d requested, %d of %d in use",
			ErrOutOfMemory, size, a.used, a.total)
	}
	// First fit: scan the gaps between existing blocks.
	prevEnd := uint64(nullGuard)
	insertAt := len(a.blocks)
	var addr uint64
	found := false
	for i, b := range a.blocks {
		if uint64(b.addr)-prevEnd >= need {
			addr, insertAt, found = prevEnd, i, true
			break
		}
		prevEnd = uint64(b.addr) + roundUp(b.size)
	}
	if !found {
		if a.total-prevEnd < need {
			return 0, fmt.Errorf("%w: address space fragmented", ErrOutOfMemory)
		}
		addr = prevEnd
	}
	nb := &block{addr: uint32(addr), size: size, data: make([]byte, size)}
	a.blocks = append(a.blocks, nil)
	copy(a.blocks[insertAt+1:], a.blocks[insertAt:])
	a.blocks[insertAt] = nb
	a.used += need
	return nb.addr, nil
}

// free releases the allocation starting exactly at addr.
func (a *allocator) free(addr uint32) error {
	i := a.find(addr)
	if i < 0 || a.blocks[i].addr != addr {
		return fmt.Errorf("%w: free(%#x)", ErrInvalidDevPtr, addr)
	}
	a.used -= roundUp(a.blocks[i].size)
	a.blocks = append(a.blocks[:i], a.blocks[i+1:]...)
	return nil
}

// find returns the index of the block containing addr, or -1.
func (a *allocator) find(addr uint32) int {
	i := sort.Search(len(a.blocks), func(i int) bool {
		return uint64(a.blocks[i].addr)+uint64(a.blocks[i].size) > uint64(addr)
	})
	if i < len(a.blocks) && a.blocks[i].addr <= addr {
		return i
	}
	return -1
}

// region resolves [addr, addr+size) to the slice of backing store it maps
// to. The range must lie within a single allocation, as in CUDA, where
// arithmetic past an allocation is undefined.
func (a *allocator) region(addr, size uint32) ([]byte, error) {
	i := a.find(addr)
	if i < 0 {
		return nil, fmt.Errorf("%w: %#x", ErrInvalidDevPtr, addr)
	}
	b := a.blocks[i]
	off := addr - b.addr
	if uint64(off)+uint64(size) > uint64(b.size) {
		return nil, fmt.Errorf("%w: [%#x,+%d) overruns allocation of %d bytes at %#x",
			ErrInvalidDevPtr, addr, size, b.size, b.addr)
	}
	return b.data[off : uint64(off)+uint64(size)], nil
}

// inUse reports allocated bytes (rounded to granularity).
func (a *allocator) inUse() uint64 { return a.used }

// count reports the number of live allocations.
func (a *allocator) count() int { return len(a.blocks) }
