package gpu

import (
	"fmt"
	"sort"
	"time"
)

// This file gives a context an exportable, restorable state — the device
// half of live session migration. ExportState captures the context's
// allocations (addresses and contents) and its simulated engine timeline;
// RestoreState rebuilds them inside a fresh context on another device,
// preserving every device address exactly, because the client still holds
// pointers into this address space. Quota accounting needs no field of its
// own: OwnedBytes/OwnedCount derive from the restored allocations, so the
// figure the destination enforces can never drift from what actually moved.

// AllocState is one live allocation: its device address, requested size,
// and contents.
type AllocState struct {
	Addr uint32
	Size uint32
	Data []byte
}

// MarkState is one stream's or event's completion instant on the context's
// virtual clock.
type MarkState struct {
	ID   uint32
	Done time.Duration
}

// TimelineState is the simulated engine state of one context: busy-until
// instants for the copy and compute engines, per-stream and per-event
// completion instants, and the id counters (so post-migration creations
// cannot collide with handles the client already holds).
type TimelineState struct {
	EngineDone [2]time.Duration
	Streams    []MarkState
	Events     []MarkState
	NextStream uint32
	NextEvent  uint32
}

// ContextState is a context's full exportable state. Allocs is sorted by
// address and Streams/Events by id, so serializing the state is
// deterministic.
type ContextState struct {
	Allocs   []AllocState
	Timeline TimelineState
}

// allocAt reserves size bytes at exactly addr, failing if the region is
// unavailable. It is the restore-side counterpart of alloc: a migrated
// session's pointers must land at their original addresses.
func (a *allocator) allocAt(addr, size uint32) error {
	if size == 0 {
		return ErrZeroSize
	}
	if addr < nullGuard || uint64(addr)%allocAlign != 0 {
		return fmt.Errorf("%w: allocAt(%#x)", ErrInvalidDevPtr, addr)
	}
	need := roundUp(size)
	if uint64(addr)+need > a.total {
		return fmt.Errorf("%w: allocAt(%#x,+%d) past capacity %d", ErrOutOfMemory, addr, size, a.total)
	}
	if a.used+need > a.total {
		return fmt.Errorf("%w: %d requested, %d of %d in use", ErrOutOfMemory, size, a.used, a.total)
	}
	i := sort.Search(len(a.blocks), func(i int) bool { return a.blocks[i].addr >= addr })
	if i > 0 {
		prev := a.blocks[i-1]
		if uint64(prev.addr)+roundUp(prev.size) > uint64(addr) {
			return fmt.Errorf("%w: allocAt(%#x) overlaps allocation at %#x", ErrInvalidDevPtr, addr, prev.addr)
		}
	}
	if i < len(a.blocks) && uint64(a.blocks[i].addr) < uint64(addr)+need {
		return fmt.Errorf("%w: allocAt(%#x) overlaps allocation at %#x", ErrInvalidDevPtr, addr, a.blocks[i].addr)
	}
	nb := &block{addr: addr, size: size, data: make([]byte, size)}
	a.blocks = append(a.blocks, nil)
	copy(a.blocks[i+1:], a.blocks[i:])
	a.blocks[i] = nb
	a.used += need
	return nil
}

// ExportState captures the context's allocations and timeline. The state
// shares no storage with the context; a later operation cannot mutate it.
func (c *Context) ExportState() (*ContextState, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return nil, err
	}
	st := &ContextState{}
	addrs := make([]uint32, 0, len(c.owned))
	for addr := range c.owned {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	c.dev.mu.Lock()
	for _, addr := range addrs {
		size := c.owned[addr]
		region, err := c.dev.alloc.region(addr, size)
		if err != nil {
			c.dev.mu.Unlock()
			return nil, fmt.Errorf("gpu: export: %w", err)
		}
		st.Allocs = append(st.Allocs, AllocState{
			Addr: addr,
			Size: size,
			Data: append([]byte(nil), region...),
		})
	}
	c.dev.mu.Unlock()
	st.Timeline = TimelineState{
		EngineDone: c.tl.engineDone,
		Streams:    sortedMarks(c.tl.streamDone),
		Events:     sortedMarks(c.tl.events),
		NextStream: c.tl.nextStream,
		NextEvent:  c.tl.nextEvent,
	}
	return st, nil
}

func sortedMarks(m map[uint32]time.Duration) []MarkState {
	marks := make([]MarkState, 0, len(m))
	for id, done := range m {
		marks = append(marks, MarkState{ID: id, Done: done})
	}
	sort.Slice(marks, func(i, j int) bool { return marks[i].ID < marks[j].ID })
	return marks
}

// RestoreState rebuilds an exported state inside this context, which must
// be fresh (no allocations). Every allocation lands at its original device
// address; failure rolls back whatever was placed, leaving the context
// empty again.
func (c *Context) RestoreState(st *ContextState) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return err
	}
	if len(c.owned) != 0 {
		return fmt.Errorf("gpu: restore into a context holding %d allocations", len(c.owned))
	}
	c.dev.mu.Lock()
	for i := range st.Allocs {
		al := &st.Allocs[i]
		err := c.dev.alloc.allocAt(al.Addr, al.Size)
		if err == nil && len(al.Data) != int(al.Size) {
			err = fmt.Errorf("gpu: restore alloc %#x carries %d bytes, want %d", al.Addr, len(al.Data), al.Size)
			_ = c.dev.alloc.free(al.Addr)
		}
		if err != nil {
			for addr := range c.owned {
				_ = c.dev.alloc.free(addr)
				delete(c.owned, addr)
			}
			c.dev.mu.Unlock()
			return err
		}
		region, _ := c.dev.alloc.region(al.Addr, al.Size)
		copy(region, al.Data)
		c.owned[al.Addr] = al.Size
	}
	c.dev.mu.Unlock()

	tl := newTimeline()
	tl.engineDone = st.Timeline.EngineDone
	for _, m := range st.Timeline.Streams {
		tl.streamDone[m.ID] = m.Done
	}
	for _, m := range st.Timeline.Events {
		tl.events[m.ID] = m.Done
	}
	if st.Timeline.NextStream > tl.nextStream {
		tl.nextStream = st.Timeline.NextStream
	}
	if st.Timeline.NextEvent > tl.nextEvent {
		tl.nextEvent = st.Timeline.NextEvent
	}
	c.tl = tl
	return nil
}
