package gpu

import "time"

// This file is the device half of the chunked-memcpy pipeline (see
// internal/protocol/chunked.go). The server books each chunk's PCIe push
// at the instant the chunk arrived from the network rather than at the
// instant it got around to dispatching it, so the copy engine drains
// chunk k while chunk k+1 is still on the wire. All entry points fall back
// to the synchronous path on the default stream or on a clock that cannot
// jump (wall time), where overlap cannot be modeled.

// ValidRegion reports whether [addr, addr+size) lies within a single live
// device allocation, without touching the bytes. The chunked server
// validates a whole transfer before acknowledging the Begin message.
func (c *Context) ValidRegion(addr, size uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return err
	}
	c.dev.mu.Lock()
	_, err := c.dev.alloc.region(addr, size)
	c.dev.mu.Unlock()
	return err
}

// CopyToDeviceAsyncAt writes host data into device memory now and books
// its PCIe time on the copy engine and the stream, with the transfer
// starting no earlier than notBefore on the device clock. It returns the
// modeled completion instant. On the default stream or a non-advancing
// clock it degrades to the synchronous CopyToDevice.
func (c *Context) CopyToDeviceAsyncAt(dst uint32, data []byte, stream uint32, notBefore time.Duration) (time.Duration, error) {
	if stream == DefaultStream || !c.asyncCapable() {
		if err := c.CopyToDevice(dst, data); err != nil {
			return 0, err
		}
		return c.dev.cfg.Clock.Now(), nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return 0, err
	}
	c.dev.mu.Lock()
	region, err := c.dev.alloc.region(dst, uint32(len(data)))
	c.dev.mu.Unlock()
	if err != nil {
		return 0, err
	}
	copy(region, data)
	return c.scheduleAt(copyEngine, stream, c.dev.PCIeTime(int64(len(data))), notBefore)
}

// CopyToHostAsyncAt reads device memory into the caller's buffer now and
// books the transfer on the copy engine and the stream, starting no
// earlier than notBefore. It returns the modeled completion instant — the
// earliest moment the bytes may be put on the network. On the default
// stream or a non-advancing clock it degrades to the synchronous
// CopyToHostInto.
func (c *Context) CopyToHostAsyncAt(dst []byte, src uint32, stream uint32, notBefore time.Duration) (time.Duration, error) {
	if stream == DefaultStream || !c.asyncCapable() {
		if err := c.CopyToHostInto(dst, src); err != nil {
			return 0, err
		}
		return c.dev.cfg.Clock.Now(), nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return 0, err
	}
	c.dev.mu.Lock()
	region, err := c.dev.alloc.region(src, uint32(len(dst)))
	c.dev.mu.Unlock()
	if err != nil {
		return 0, err
	}
	copy(dst, region)
	return c.scheduleAt(copyEngine, stream, c.dev.PCIeTime(int64(len(dst))), notBefore)
}

// CopyToHostInto is CopyToHost reading into the caller's buffer instead of
// a fresh allocation; the buffer's length selects the transfer size. It
// lets the server serve device-to-host reads from pooled memory.
func (c *Context) CopyToHostInto(dst []byte, src uint32) error {
	if err := c.Synchronize(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return err
	}
	c.dev.mu.Lock()
	region, err := c.dev.alloc.region(src, uint32(len(dst)))
	c.dev.mu.Unlock()
	if err != nil {
		return err
	}
	copy(dst, region)
	c.dev.sleep(c.dev.PCIeTime(int64(len(dst))))
	return nil
}
