// Package gpu simulates the CUDA device of the paper's testbed: an NVIDIA
// Tesla C1060 (compute capability 1.3, 4 GB of device memory) attached to a
// PCIe 2.0 x16 port with a measured effective host–device bandwidth of
// 5,743 MB/s.
//
// The simulation is functional *and* timed: kernels really execute (their
// results live in host-backed device memory and are checked by tests), while
// the time they take is drawn from calibrated cost models and advances the
// simulation's Clock. Running against a wall clock degrades gracefully —
// models simply sleep.
package gpu

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rcuda/internal/vclock"
)

// Paper/testbed constants.
const (
	// DefaultMemoryBytes is the Tesla C1060's 4 GB of device memory.
	DefaultMemoryBytes = 4 << 30
	// DefaultPCIeMBps is the measured effective bandwidth between host
	// and device memory (MiB/s); the PCIe 2.0 x16 link's peak is 8 GB/s.
	DefaultPCIeMBps = 5743
	// DefaultInitTime approximates the CUDA environment initialization
	// delay that the rCUDA daemon hides by pre-initializing the context.
	DefaultInitTime = 800 * time.Millisecond
	// Capability of the Tesla C1060.
	DefaultCapabilityMajor = 1
	DefaultCapabilityMinor = 3
)

// Jitter perturbs modeled durations; netsim.Noise implements it. A nil
// Jitter is pass-through.
type Jitter interface {
	Perturb(time.Duration) time.Duration
}

// Config parameterizes a simulated device. Zero fields take the Tesla
// C1060 defaults above.
type Config struct {
	Name            string
	MemoryBytes     uint64
	PCIeMBps        float64
	MemoryMBps      float64
	InitTime        time.Duration
	CapabilityMajor uint32
	CapabilityMinor uint32
	Clock           vclock.Clock
	Jitter          Jitter
}

// Device is a simulated GPU. All operations are safe for concurrent use;
// the device serializes memory operations and kernel launches, modeling the
// single-GPU time multiplexing of the paper's server.
type Device struct {
	cfg Config

	mu    sync.Mutex
	alloc *allocator
}

// Dim3 is a CUDA grid/block dimension triple.
type Dim3 struct{ X, Y, Z uint32 }

// Count returns the number of threads/blocks the dimension spans; zero
// components count as one, as in CUDA's dim3 constructor defaults.
func (d Dim3) Count() uint64 {
	f := func(v uint32) uint64 {
		if v == 0 {
			return 1
		}
		return uint64(v)
	}
	return f(d.X) * f(d.Y) * f(d.Z)
}

// New creates a simulated device.
func New(cfg Config) *Device {
	if cfg.Name == "" {
		cfg.Name = "Tesla C1060 (simulated)"
	}
	if cfg.MemoryBytes == 0 {
		cfg.MemoryBytes = DefaultMemoryBytes
	}
	if cfg.PCIeMBps == 0 {
		cfg.PCIeMBps = DefaultPCIeMBps
	}
	if cfg.MemoryMBps == 0 {
		cfg.MemoryMBps = DefaultMemoryMBps
	}
	if cfg.InitTime == 0 {
		cfg.InitTime = DefaultInitTime
	}
	if cfg.CapabilityMajor == 0 {
		cfg.CapabilityMajor = DefaultCapabilityMajor
		cfg.CapabilityMinor = DefaultCapabilityMinor
	}
	if cfg.Clock == nil {
		cfg.Clock = vclock.NewSim()
	}
	return &Device{cfg: cfg, alloc: newAllocator(cfg.MemoryBytes)}
}

// Name returns the device name.
func (d *Device) Name() string { return d.cfg.Name }

// Clock returns the device's time source.
func (d *Device) Clock() vclock.Clock { return d.cfg.Clock }

// Capability returns the compute capability pair sent during rCUDA
// initialization.
func (d *Device) Capability() (major, minor uint32) {
	return d.cfg.CapabilityMajor, d.cfg.CapabilityMinor
}

// MemoryBytes returns the device memory capacity.
func (d *Device) MemoryBytes() uint64 { return d.cfg.MemoryBytes }

// MemoryInUse returns currently allocated device bytes.
func (d *Device) MemoryInUse() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.alloc.inUse()
}

// Allocations returns the number of live device allocations.
func (d *Device) Allocations() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.alloc.count()
}

// PCIeTime models a host<->device transfer of n bytes across the PCIe bus.
func (d *Device) PCIeTime(bytes int64) time.Duration {
	ms := float64(bytes) / (d.cfg.PCIeMBps * (1 << 20)) * 1e3
	return time.Duration(ms * float64(time.Millisecond))
}

func (d *Device) sleep(t time.Duration) {
	if d.cfg.Jitter != nil {
		t = d.cfg.Jitter.Perturb(t)
	}
	d.cfg.Clock.Sleep(t)
}

// Context is a CUDA context on the device. Contexts share the device's
// physical memory but each tracks its own loaded modules and owned
// allocations, so releasing a context frees everything it allocated — the
// behavior the rCUDA server relies on when a client disconnects.
type Context struct {
	dev *Device

	mu      sync.Mutex
	modules map[string]*Module
	kernels map[string]*Kernel
	owned   map[uint32]uint32 // addr -> requested size
	tl      *timeline
	dead    bool
}

// ErrContextDestroyed is returned by operations on a released context.
var ErrContextDestroyed = errors.New("gpu: context destroyed")

// NewContext creates a context, paying the CUDA environment initialization
// delay. The rCUDA daemon calls this ahead of client arrival precisely to
// hide this cost (the paper's explanation for remote-over-40GI beating the
// local GPU at m=4096).
func (d *Device) NewContext() *Context {
	d.sleep(d.cfg.InitTime)
	return d.newContextNoInit()
}

// NewContextPreinitialized creates a context without the initialization
// delay, modeling a context that was created before timing started.
func (d *Device) NewContextPreinitialized() *Context { return d.newContextNoInit() }

func (d *Device) newContextNoInit() *Context {
	return &Context{
		dev:     d,
		modules: make(map[string]*Module),
		kernels: make(map[string]*Kernel),
		owned:   make(map[uint32]uint32),
		tl:      newTimeline(),
	}
}

func (c *Context) check() error {
	if c.dead {
		return ErrContextDestroyed
	}
	return nil
}

// LoadModule makes a module's kernels launchable in this context.
func (c *Context) LoadModule(m *Module) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return err
	}
	if _, dup := c.modules[m.Name]; dup {
		return fmt.Errorf("gpu: module %q already loaded", m.Name)
	}
	for _, k := range m.Kernels {
		if _, dup := c.kernels[k.Name]; dup {
			return fmt.Errorf("gpu: kernel %q defined by two loaded modules", k.Name)
		}
	}
	c.modules[m.Name] = m
	for _, k := range m.Kernels {
		c.kernels[k.Name] = k
	}
	return nil
}

// LoadModuleImage resolves a wire-format module image and loads it.
func (c *Context) LoadModuleImage(img []byte) error {
	m, err := ResolveModule(img)
	if err != nil {
		return err
	}
	return c.LoadModule(m)
}

// Malloc allocates device memory.
func (c *Context) Malloc(size uint32) (uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return 0, err
	}
	c.dev.mu.Lock()
	addr, err := c.dev.alloc.alloc(size)
	c.dev.mu.Unlock()
	if err != nil {
		return 0, err
	}
	c.owned[addr] = size
	return addr, nil
}

// Free releases a device allocation owned by this context.
func (c *Context) Free(addr uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return err
	}
	if _, ok := c.owned[addr]; !ok {
		return fmt.Errorf("%w: %#x not owned by this context", ErrInvalidDevPtr, addr)
	}
	c.dev.mu.Lock()
	err := c.dev.alloc.free(addr)
	c.dev.mu.Unlock()
	if err != nil {
		return err
	}
	delete(c.owned, addr)
	return nil
}

// CopyToDevice writes host data into device memory, advancing the clock by
// the modeled PCIe transfer time. Like a default-stream cudaMemcpy, it
// first waits out any pending asynchronous work.
func (c *Context) CopyToDevice(dst uint32, data []byte) error {
	if err := c.Synchronize(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return err
	}
	c.dev.mu.Lock()
	region, err := c.dev.alloc.region(dst, uint32(len(data)))
	c.dev.mu.Unlock()
	if err != nil {
		return err
	}
	copy(region, data)
	c.dev.sleep(c.dev.PCIeTime(int64(len(data))))
	return nil
}

// CopyToHost reads device memory into a fresh host buffer, advancing the
// clock by the modeled PCIe transfer time. Like a default-stream
// cudaMemcpy, it first waits out any pending asynchronous work.
func (c *Context) CopyToHost(src uint32, size uint32) ([]byte, error) {
	if err := c.Synchronize(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.check(); err != nil {
		return nil, err
	}
	c.dev.mu.Lock()
	region, err := c.dev.alloc.region(src, size)
	c.dev.mu.Unlock()
	if err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, region)
	c.dev.sleep(c.dev.PCIeTime(int64(size)))
	return out, nil
}

// OwnedBytes returns the device bytes this context holds, charged at the
// allocator's granularity — the figure per-session quotas are enforced
// against. Zero after Destroy.
func (c *Context) OwnedBytes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total uint64
	for _, size := range c.owned {
		total += roundUp(size)
	}
	return total
}

// OwnedCount returns the number of live allocations this context holds.
func (c *Context) OwnedCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.owned)
}

// ExecContext is what a kernel sees when it runs.
type ExecContext struct {
	ctx    *Context
	Grid   Dim3
	Block  Dim3
	Shared uint32
	Params *ParamReader
}

// Device returns the device the kernel runs on.
func (ec *ExecContext) Device() *Device { return ec.ctx.dev }

// Mem resolves a device pointer range to its backing bytes for the duration
// of the kernel. Kernels use this to read inputs and write outputs.
func (ec *ExecContext) Mem(addr, size uint32) ([]byte, error) {
	ec.ctx.dev.mu.Lock()
	defer ec.ctx.dev.mu.Unlock()
	return ec.ctx.dev.alloc.region(addr, size)
}

// ErrUnknownKernel is returned when launching a kernel no loaded module
// provides.
var ErrUnknownKernel = errors.New("gpu: unknown kernel")

// ErrInvalidLaunch is returned for launch geometries the device cannot
// execute.
var ErrInvalidLaunch = errors.New("gpu: invalid launch configuration")

// Compute-capability 1.3 launch limits (Tesla C1060).
const (
	maxThreadsPerBlock = 512
	maxBlockXY         = 512
	maxBlockZ          = 64
	maxGridXY          = 65535
)

// validateLaunch enforces the device's launch limits; zero dimensions
// default to one, as in CUDA's dim3 constructor.
func validateLaunch(grid, block Dim3) error {
	if block.Count() > maxThreadsPerBlock {
		return fmt.Errorf("%w: %d threads per block exceeds %d",
			ErrInvalidLaunch, block.Count(), maxThreadsPerBlock)
	}
	if block.X > maxBlockXY || block.Y > maxBlockXY || block.Z > maxBlockZ {
		return fmt.Errorf("%w: block (%d,%d,%d) exceeds (%d,%d,%d)",
			ErrInvalidLaunch, block.X, block.Y, block.Z, maxBlockXY, maxBlockXY, maxBlockZ)
	}
	if grid.X > maxGridXY || grid.Y > maxGridXY || grid.Z > 1 {
		return fmt.Errorf("%w: grid (%d,%d,%d) exceeds (%d,%d,1)",
			ErrInvalidLaunch, grid.X, grid.Y, grid.Z, maxGridXY, maxGridXY)
	}
	return nil
}

// Launch executes a kernel synchronously: it runs the kernel's Go
// implementation against device memory and advances the clock by the
// kernel's modeled cost.
func (c *Context) Launch(name string, grid, block Dim3, shared uint32, params []byte) error {
	if err := validateLaunch(grid, block); err != nil {
		return err
	}
	if err := c.Synchronize(); err != nil {
		return err
	}
	c.mu.Lock()
	if err := c.check(); err != nil {
		c.mu.Unlock()
		return err
	}
	k, ok := c.kernels[name]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q (loaded modules: %v)", ErrUnknownKernel, name, c.loadedModules())
	}
	ec := &ExecContext{ctx: c, Grid: grid, Block: block, Shared: shared, Params: NewParamReader(params)}
	if err := k.Run(ec); err != nil {
		return fmt.Errorf("gpu: kernel %q: %w", name, err)
	}
	if k.Cost != nil {
		// Cost models must see the same parameter view Run did.
		ec.Params = NewParamReader(params)
		c.dev.sleep(k.Cost(ec))
	}
	return nil
}

func (c *Context) loadedModules() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.modules))
	for n := range c.modules {
		names = append(names, n)
	}
	return names
}

// Destroy releases the context and frees every allocation it owns.
func (c *Context) Destroy() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return nil
	}
	c.dead = true
	c.dev.mu.Lock()
	defer c.dev.mu.Unlock()
	var firstErr error
	for addr := range c.owned {
		if err := c.dev.alloc.free(addr); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.owned = nil
	return firstErr
}
