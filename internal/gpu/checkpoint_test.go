package gpu

import (
	"bytes"
	"testing"
)

func newCkptDevice(total uint64) *Device {
	return New(Config{MemoryBytes: total})
}

// TestAllocAtExact places blocks at explicit addresses and checks overlap
// and bounds rejection.
func TestAllocAtExact(t *testing.T) {
	a := newAllocator(1 << 20)
	if err := a.allocAt(256, 512); err != nil {
		t.Fatal(err)
	}
	if err := a.allocAt(1024, 100); err != nil {
		t.Fatal(err)
	}
	if got := a.inUse(); got != 512+256 {
		t.Fatalf("inUse %d, want %d", got, 512+256)
	}
	for _, bad := range []struct {
		addr, size uint32
	}{
		{0, 16},      // null guard
		{300, 16},    // unaligned
		{256, 16},    // overlaps first block exactly
		{768, 512},   // tail overlaps second block
		{1 << 20, 4}, // past capacity
		{512, 0},     // zero size
	} {
		if err := a.allocAt(bad.addr, bad.size); err == nil {
			t.Fatalf("allocAt(%#x,%d) accepted", bad.addr, bad.size)
		}
	}
	// The gap between the two blocks is still usable.
	if err := a.allocAt(768, 256); err != nil {
		t.Fatalf("gap placement: %v", err)
	}
	// And ordinary alloc still works around the placed blocks.
	if _, err := a.alloc(64); err != nil {
		t.Fatalf("first-fit after allocAt: %v", err)
	}
}

// TestContextStateRoundTrip is the device half of the checkpoint
// round-trip table: each shape exports from one context and restores into
// a fresh one bit-exactly, with quota accounting re-derived.
func TestContextStateRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		build func(t *testing.T, c *Context)
	}{
		{"empty context", func(t *testing.T, c *Context) {}},
		{"allocations with contents", func(t *testing.T, c *Context) {
			a, err := c.Malloc(500)
			if err != nil {
				t.Fatal(err)
			}
			b, err := c.Malloc(64)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.CopyToDevice(a, bytes.Repeat([]byte{0x5a}, 500)); err != nil {
				t.Fatal(err)
			}
			if err := c.CopyToDevice(b, bytes.Repeat([]byte{0xa5}, 64)); err != nil {
				t.Fatal(err)
			}
		}},
		{"streams and events", func(t *testing.T, c *Context) {
			s, err := c.StreamCreate()
			if err != nil {
				t.Fatal(err)
			}
			e, err := c.EventCreate()
			if err != nil {
				t.Fatal(err)
			}
			dst, err := c.Malloc(2048)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.CopyToDeviceAsync(dst, make([]byte, 2048), s); err != nil {
				t.Fatal(err)
			}
			if err := c.EventRecord(e, s); err != nil {
				t.Fatal(err)
			}
		}},
		{"quota at limit", func(t *testing.T, c *Context) {
			// Fill the (small) device completely.
			if _, err := c.Malloc(2048); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Malloc(2048 - 2*allocAlign); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := newCkptDevice(4096).NewContextPreinitialized()
			tc.build(t, src)
			st, err := src.ExportState()
			if err != nil {
				t.Fatal(err)
			}

			dst := newCkptDevice(4096).NewContextPreinitialized()
			if err := dst.RestoreState(st); err != nil {
				t.Fatal(err)
			}
			if got, want := dst.OwnedBytes(), src.OwnedBytes(); got != want {
				t.Fatalf("restored OwnedBytes %d, want %d", got, want)
			}
			if got, want := dst.OwnedCount(), src.OwnedCount(); got != want {
				t.Fatalf("restored OwnedCount %d, want %d", got, want)
			}
			st2, err := dst.ExportState()
			if err != nil {
				t.Fatal(err)
			}
			if len(st2.Allocs) != len(st.Allocs) {
				t.Fatalf("restored %d allocs, want %d", len(st2.Allocs), len(st.Allocs))
			}
			for i := range st.Allocs {
				if st2.Allocs[i].Addr != st.Allocs[i].Addr ||
					st2.Allocs[i].Size != st.Allocs[i].Size ||
					!bytes.Equal(st2.Allocs[i].Data, st.Allocs[i].Data) {
					t.Fatalf("alloc %d drifted: %+v vs %+v",
						i, st2.Allocs[i].Addr, st.Allocs[i].Addr)
				}
			}
			if st2.Timeline.NextStream != st.Timeline.NextStream ||
				st2.Timeline.NextEvent != st.Timeline.NextEvent ||
				st2.Timeline.EngineDone != st.Timeline.EngineDone ||
				len(st2.Timeline.Streams) != len(st.Timeline.Streams) ||
				len(st2.Timeline.Events) != len(st.Timeline.Events) {
				t.Fatalf("timeline drifted:\n got %+v\nwant %+v", st2.Timeline, st.Timeline)
			}
		})
	}
}

// TestRestoreStateIsolation verifies the exported state shares no storage
// with the source: mutating the source after export must not leak into the
// restored context.
func TestRestoreStateIsolation(t *testing.T) {
	src := newCkptDevice(4096).NewContextPreinitialized()
	addr, err := src.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CopyToDevice(addr, bytes.Repeat([]byte{1}, 16)); err != nil {
		t.Fatal(err)
	}
	st, err := src.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if err := src.CopyToDevice(addr, bytes.Repeat([]byte{9}, 16)); err != nil {
		t.Fatal(err)
	}
	dst := newCkptDevice(4096).NewContextPreinitialized()
	if err := dst.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	out, err := dst.CopyToHost(addr, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, bytes.Repeat([]byte{1}, 16)) {
		t.Fatalf("restored bytes mutated by source write: %x", out)
	}
}

// TestRestoreStateRollback verifies a failed restore leaves the context
// empty and the device allocator unchanged.
func TestRestoreStateRollback(t *testing.T) {
	dev := newCkptDevice(4096)
	c := dev.NewContextPreinitialized()
	st := &ContextState{Allocs: []AllocState{
		{Addr: 256, Size: 16, Data: make([]byte, 16)},
		{Addr: 512, Size: 16, Data: make([]byte, 8)}, // size/data mismatch
	}}
	if err := c.RestoreState(st); err == nil {
		t.Fatal("mismatched alloc data accepted")
	}
	if c.OwnedCount() != 0 || dev.MemoryInUse() != 0 {
		t.Fatalf("rollback left %d allocs, %d bytes", c.OwnedCount(), dev.MemoryInUse())
	}
	// A non-empty context refuses restore outright.
	if _, err := c.Malloc(16); err != nil {
		t.Fatal(err)
	}
	if err := c.RestoreState(&ContextState{}); err == nil {
		t.Fatal("restore into non-empty context accepted")
	}
}

// TestRestoreStatePostRestoreHandles checks that streams/events created
// after a restore do not collide with migrated handles, and that migrated
// pending work still synchronizes.
func TestRestoreStatePostRestoreHandles(t *testing.T) {
	src := newCkptDevice(4096).NewContextPreinitialized()
	s1, err := src.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	e1, err := src.EventCreate()
	if err != nil {
		t.Fatal(err)
	}
	st, err := src.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	dst := newCkptDevice(4096).NewContextPreinitialized()
	if err := dst.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	s2, err := dst.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	if s2 == s1 || s2 == DefaultStream {
		t.Fatalf("post-restore stream id %d collides", s2)
	}
	e2, err := dst.EventCreate()
	if err != nil {
		t.Fatal(err)
	}
	if e2 == e1 {
		t.Fatalf("post-restore event id %d collides", e2)
	}
	if err := dst.StreamSynchronize(s1); err != nil {
		t.Fatalf("migrated stream unusable: %v", err)
	}
	if err := dst.EventSynchronize(e1); err != nil {
		t.Fatalf("migrated event unusable: %v", err)
	}
	if _, err := dst.EventElapsed(e1, e2); err != nil {
		t.Fatalf("EventElapsed across migration: %v", err)
	}
}
