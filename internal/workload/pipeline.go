package workload

import (
	"fmt"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/fft"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
	"rcuda/internal/rcuda"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// Pipelined remote FFT — the extension experiment built on the async
// support (the paper's future work). The batch is split into chunks; each
// chunk's host-to-device copy, kernel, and device-to-host copy are queued
// asynchronously on one of two streams over two ping-pong device buffers,
// so the server GPU overlaps one chunk's PCIe transfer with another's
// kernel. The wire itself remains synchronous request/response.
//
// As with the base runners there are two modes that agree exactly when
// noise is off: a functional mode driving the real middleware, and an
// analytic mode replaying the same message schedule and engine bookkeeping
// in closed form.

// RunPipelined executes the FFT case study remotely with the batch split
// into the given number of chunks (≥ 2; the batch must divide evenly).
func RunPipelined(size int, chunks int, opts Options) (Report, error) {
	if opts.Clock == nil {
		opts.Clock = vclock.NewSim()
	}
	if opts.Link == nil {
		return Report{}, fmt.Errorf("workload: pipelined run needs a network link")
	}
	if chunks < 2 {
		return Report{}, fmt.Errorf("workload: pipelining needs at least 2 chunks, got %d", chunks)
	}
	if size%chunks != 0 {
		return Report{}, fmt.Errorf("workload: batch %d does not divide into %d chunks", size, chunks)
	}
	if opts.Functional {
		return runPipelinedFunctional(size, chunks, opts)
	}
	return runPipelinedAnalytic(size, chunks, opts)
}

// runPipelinedAnalytic replays the pipelined message schedule and the
// device's two-engine timeline in closed form.
func runPipelinedAnalytic(size, chunks int, opts Options) (Report, error) {
	sw := vclock.NewStopwatch(opts.Clock)
	chunkBatch := size / chunks
	chunkBytes := calib.CopyBytes(calib.FFT, chunkBatch)
	pcie := calib.PCIeTime(calib.FFT, chunkBatch)
	kernel := calib.KernelTime(calib.FFT, chunkBatch)

	// Host-side setup, exactly like the synchronous run.
	parts := Breakdown{
		DataGen: opts.perturb(calib.DataGenTime(calib.FFT, size)),
		Marshal: opts.perturb(calib.MarshalTime(calib.FFT, size)),
		Mgmt:    opts.perturb(calib.Mgmt),
	}
	opts.Clock.Sleep(parts.DataGen)
	opts.Clock.Sleep(parts.Marshal)

	wire := func(bytes int64) time.Duration {
		return opts.perturb(opts.Link.WireTime(bytes))
	}
	netStart := opts.Clock.Now()

	// Session setup messages: init, 2 x malloc, 2 x stream create.
	moduleMsg := int64(4 + calib.ModuleBytes(calib.FFT))
	for _, m := range []struct{ send, recv int64 }{
		{moduleMsg, 12}, {8, 8}, {8, 8}, {4, 8}, {4, 8},
	} {
		opts.Clock.Sleep(wire(m.send))
		opts.Clock.Sleep(wire(m.recv))
	}

	// Two-engine, two-stream timeline mirroring gpu.Context.schedule.
	var copyFree, execFree time.Duration
	streamFree := make([]time.Duration, 2)
	book := func(engineFree *time.Duration, s int, cost time.Duration) {
		start := opts.Clock.Now()
		if *engineFree > start {
			start = *engineFree
		}
		if streamFree[s] > start {
			start = streamFree[s]
		}
		end := start + opts.perturb(cost)
		*engineFree = end
		streamFree[s] = end
	}

	launchVar := int64(len(kernels.FFTKernel)) + 1 + 3*4
	for c := 0; c < chunks; c++ {
		s := c % 2
		// H2D async: request carries the chunk, response is 4 bytes.
		opts.Clock.Sleep(wire(chunkBytes + 24))
		book(&copyFree, s, pcie)
		opts.Clock.Sleep(wire(4))
		// Launch async.
		opts.Clock.Sleep(wire(44 + launchVar))
		book(&execFree, s, kernel)
		opts.Clock.Sleep(wire(4))
		// D2H async: 24-byte request, response carries the chunk.
		opts.Clock.Sleep(wire(24))
		book(&copyFree, s, pcie)
		opts.Clock.Sleep(wire(chunkBytes + 4))
	}
	// Device synchronize: small round trip, then the clock advances to
	// the last engine completion.
	opts.Clock.Sleep(wire(4))
	latest := copyFree
	if execFree > latest {
		latest = execFree
	}
	if sim, ok := opts.Clock.(*vclock.Sim); ok {
		sim.AdvanceTo(latest)
	}
	opts.Clock.Sleep(wire(4))
	// Teardown: 2 stream destroys, 2 frees, finalize.
	for _, m := range []struct{ send, recv int64 }{
		{8, 4}, {8, 4}, {8, 4}, {8, 4}, {4, 0},
	} {
		opts.Clock.Sleep(wire(m.send))
		if m.recv > 0 {
			opts.Clock.Sleep(wire(m.recv))
		}
	}
	parts.Network = opts.Clock.Now() - netStart
	opts.Clock.Sleep(parts.Mgmt)

	return Report{
		CS: calib.FFT, Size: size, Backend: Remote, Network: opts.Link.Name(),
		Total: sw.Elapsed(), Parts: parts,
	}, nil
}

// runPipelinedFunctional drives the real middleware with streams.
func runPipelinedFunctional(size, chunks int, opts Options) (Report, error) {
	if err := checkFunctionalSize(calib.FFT, size); err != nil {
		return Report{}, err
	}
	sw := vclock.NewStopwatch(opts.Clock)
	dev := gpu.New(gpu.Config{Clock: opts.Clock, Jitter: opts.Noise})
	server := rcuda.NewServer(dev)
	cliEnd, srvEnd := transport.Pipe(opts.Link, opts.Clock, opts.Noise)
	serveDone := make(chan error, 1)
	go func() { serveDone <- server.ServeConn(srvEnd) }()

	mod, err := kernels.ModuleFor(calib.FFT)
	if err != nil {
		return Report{}, err
	}
	img, err := mod.Binary()
	if err != nil {
		return Report{}, err
	}
	client, err := rcuda.Open(cliEnd, img)
	if err != nil {
		return Report{}, err
	}

	opts.Clock.Sleep(opts.perturb(calib.DataGenTime(calib.FFT, size)))
	opts.Clock.Sleep(opts.perturb(calib.MarshalTime(calib.FFT, size)))

	report, runErr := pipelineBody(size, chunks, client, opts)
	closeErr := client.Close()
	if err := <-serveDone; err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		return Report{}, runErr
	}
	if closeErr != nil {
		return Report{}, closeErr
	}
	if inUse := dev.MemoryInUse(); inUse != 0 {
		return Report{}, fmt.Errorf("workload: %d bytes leaked on the device", inUse)
	}
	opts.Clock.Sleep(opts.perturb(calib.Mgmt))
	report.Total = sw.Elapsed()
	return report, nil
}

func pipelineBody(size, chunks int, client *rcuda.Client, opts Options) (Report, error) {
	chunkBatch := size / chunks
	chunkBytes := uint32(chunkBatch * fft.BytesPerTransform)

	var bufs [2]cudart.DevicePtr
	for i := range bufs {
		p, err := client.Malloc(chunkBytes)
		if err != nil {
			return Report{}, err
		}
		bufs[i] = p
	}
	var streams [2]cudart.Stream
	for i := range streams {
		s, err := client.StreamCreate()
		if err != nil {
			return Report{}, err
		}
		streams[i] = s
	}

	// Generate per-chunk input, queue the pipeline, and collect outputs.
	verified := true
	outs := make([][]byte, chunks)
	for c := 0; c < chunks; c++ {
		s, buf := streams[c%2], bufs[c%2]
		in := make([]complex64, chunkBatch*fft.Points)
		for i := range in {
			in[i] = complex(float32((c+i)%7)-3, float32(i%5)-2)
		}
		raw := cudart.Complex64Bytes(in)
		if err := client.MemcpyToDeviceAsync(buf, raw, s); err != nil {
			return Report{}, err
		}
		if err := client.LaunchAsync(kernels.FFTKernel,
			cudart.Dim3{X: uint32(chunkBatch)}, cudart.Dim3{X: 64}, 0,
			gpu.PackParams(uint32(buf), uint32(chunkBatch), 0), s); err != nil {
			return Report{}, err
		}
		out := make([]byte, len(raw))
		if err := client.MemcpyToHostAsync(out, buf, s); err != nil {
			return Report{}, err
		}
		outs[c] = out

		// Verify against the host FFT.
		want := append([]complex64(nil), in...)
		if err := fft.TransformBatch(fft.Forward, want, fft.Points); err != nil {
			return Report{}, err
		}
		got := cudart.BytesComplex64(out)
		for i := range want {
			dr := real(got[i]) - real(want[i])
			di := imag(got[i]) - imag(want[i])
			if dr*dr+di*di > 1e-4 {
				verified = false
			}
		}
	}
	if err := client.DeviceSynchronize(); err != nil {
		return Report{}, err
	}
	for _, s := range streams {
		if err := client.StreamDestroy(s); err != nil {
			return Report{}, err
		}
	}
	for _, p := range bufs {
		if err := client.Free(p); err != nil {
			return Report{}, err
		}
	}
	return Report{
		CS: calib.FFT, Size: size, Backend: Remote, Network: opts.Link.Name(),
		Verified: verified,
	}, nil
}
