package workload

import (
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/stats"
)

// Repetitions used by the paper for execution-time averages.
const PaperRepetitions = 30

// MeasureMean runs the case study reps times and returns summary statistics
// of the total times, mirroring the paper's methodology ("empirically
// measured times are averaged from 30 executions").
func MeasureMean(cs calib.CaseStudy, size int, backend Backend, opts Options, reps int) (stats.Summary, error) {
	if reps <= 0 {
		reps = 1
	}
	samples := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		r, err := Run(cs, size, backend, opts)
		if err != nil {
			return stats.Summary{}, err
		}
		samples = append(samples, r.Total.Seconds())
	}
	return stats.Summarize(samples)
}

// MeasureSeries sweeps the paper's problem sizes for a case study on one
// backend, returning the mean execution time per size — the raw material
// the estimation model is built from.
func MeasureSeries(cs calib.CaseStudy, backend Backend, opts Options, reps int) (map[int]time.Duration, error) {
	out := make(map[int]time.Duration)
	for _, size := range calib.Sizes(cs) {
		s, err := MeasureMean(cs, size, backend, opts, reps)
		if err != nil {
			return nil, err
		}
		out[size] = time.Duration(s.Mean * float64(time.Second))
	}
	return out, nil
}
