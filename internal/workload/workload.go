// Package workload runs the paper's two case studies — the matrix-matrix
// product and the batched 512-point FFT — on any of three backends: the
// local 8-core CPU (MKL/FFTW stand-ins), a local GPU, or a remote GPU
// through the rCUDA middleware over any modeled interconnect.
//
// Every backend has two execution modes:
//
//   - Functional: the real stack runs end to end — data is generated,
//     marshaled, sent through the middleware, computed by the simulated
//     device's kernels, and verified against an independent CPU oracle.
//     Time still comes from the calibrated models via the simulation clock.
//     Feasible at small problem sizes.
//
//   - Analytic: the same calibrated component costs and the same message
//     schedule advance the clock without materializing gigabytes of data,
//     making the paper's full problem sizes (up to 3.8 GB of transfers per
//     run) cheap to sweep. By construction the two modes agree exactly when
//     noise is disabled, and a test asserts it.
package workload

import (
	"fmt"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
	"rcuda/internal/perfmodel"
	"rcuda/internal/protocol"
	"rcuda/internal/rcuda"
	"rcuda/internal/vclock"
)

// Backend selects where the case study executes.
type Backend int

// Available backends.
const (
	// CPU runs on the local 8-core processor with high performance
	// libraries, the paper's non-accelerated baseline.
	CPU Backend = iota
	// LocalGPU runs on a GPU in the same node over PCIe.
	LocalGPU
	// Remote runs on a remote GPU through the rCUDA middleware.
	Remote
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case CPU:
		return "CPU"
	case LocalGPU:
		return "GPU"
	case Remote:
		return "rCUDA"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Options configures a run.
type Options struct {
	// Link is the interconnect for the Remote backend.
	Link *netsim.Link
	// Noise perturbs every modeled component; nil runs noiselessly.
	Noise *netsim.Noise
	// Functional executes the real middleware and kernels with real data
	// and verifies the numerical results. Use small sizes.
	Functional bool
	// Clock overrides the time source; a fresh virtual clock by default.
	Clock vclock.Clock
	// Observer, if set, receives every remote call (Remote functional
	// runs only); package trace provides an implementation.
	Observer rcuda.Observer
	// Seed drives functional-mode input data generation.
	Seed int64
}

// Breakdown attributes the execution time to components.
type Breakdown struct {
	Init    time.Duration // CUDA context creation (local GPU only)
	DataGen time.Duration // random input generation
	Marshal time.Duration // middleware host-side copies (remote only)
	Network time.Duration // wire time of all messages (remote only)
	PCIe    time.Duration // host-device transfers
	Kernel  time.Duration // device execution
	Compute time.Duration // CPU library execution (CPU backend only)
	Mgmt    time.Duration // fixed middleware management overhead
}

// Report is the outcome of one run.
type Report struct {
	CS       calib.CaseStudy
	Size     int
	Backend  Backend
	Network  string // interconnect name for Remote runs
	Total    time.Duration
	Parts    Breakdown
	Verified bool // results checked against the CPU oracle
}

// Run executes one case study once and reports its (simulated) time.
func Run(cs calib.CaseStudy, size int, backend Backend, opts Options) (Report, error) {
	if size <= 0 {
		return Report{}, fmt.Errorf("workload: non-positive size %d", size)
	}
	if opts.Clock == nil {
		opts.Clock = vclock.NewSim()
	}
	switch backend {
	case CPU:
		return runCPU(cs, size, opts)
	case LocalGPU:
		return runLocalGPU(cs, size, opts)
	case Remote:
		if opts.Link == nil {
			return Report{}, fmt.Errorf("workload: Remote backend needs a network link")
		}
		return runRemote(cs, size, opts)
	default:
		return Report{}, fmt.Errorf("workload: unknown backend %d", backend)
	}
}

// perturb applies the configured noise to a modeled duration.
func (o Options) perturb(d time.Duration) time.Duration {
	if o.Noise == nil {
		return d
	}
	return o.Noise.Perturb(d)
}

func runCPU(cs calib.CaseStudy, size int, opts Options) (Report, error) {
	sw := vclock.NewStopwatch(opts.Clock)
	compute := opts.perturb(calib.CPUTime(cs, size))
	opts.Clock.Sleep(compute)
	return Report{
		CS: cs, Size: size, Backend: CPU,
		Total: sw.Elapsed(),
		Parts: Breakdown{Compute: compute},
	}, nil
}

func runLocalGPU(cs calib.CaseStudy, size int, opts Options) (Report, error) {
	if opts.Functional {
		return runLocalGPUFunctional(cs, size, opts)
	}
	sw := vclock.NewStopwatch(opts.Clock)
	parts := Breakdown{
		Init:    opts.perturb(calib.LocalInit(cs)),
		DataGen: opts.perturb(calib.DataGenTime(cs, size)),
		PCIe:    opts.perturb(time.Duration(calib.CopyCount(cs)) * calib.PCIeTime(cs, size)),
		Kernel:  opts.perturb(calib.KernelTime(cs, size)),
		Mgmt:    opts.perturb(calib.Mgmt),
	}
	for _, d := range []time.Duration{parts.Init, parts.DataGen, parts.PCIe, parts.Kernel, parts.Mgmt} {
		opts.Clock.Sleep(d)
	}
	return Report{CS: cs, Size: size, Backend: LocalGPU, Total: sw.Elapsed(), Parts: parts}, nil
}

func runRemote(cs calib.CaseStudy, size int, opts Options) (Report, error) {
	if opts.Functional {
		return runRemoteFunctional(cs, size, opts)
	}
	sw := vclock.NewStopwatch(opts.Clock)
	parts := Breakdown{
		DataGen: opts.perturb(calib.DataGenTime(cs, size)),
		Marshal: opts.perturb(calib.MarshalTime(cs, size)),
		PCIe:    opts.perturb(time.Duration(calib.CopyCount(cs)) * calib.PCIeTime(cs, size)),
		Kernel:  opts.perturb(calib.KernelTime(cs, size)),
		Mgmt:    opts.perturb(calib.Mgmt),
	}
	for _, msg := range Schedule(cs, size) {
		if msg.Send > 0 {
			parts.Network += opts.perturb(opts.Link.WireTime(msg.Send))
		}
		if msg.Recv > 0 {
			parts.Network += opts.perturb(opts.Link.WireTime(msg.Recv))
		}
	}
	for _, d := range []time.Duration{parts.DataGen, parts.Marshal, parts.Network, parts.PCIe, parts.Kernel, parts.Mgmt} {
		opts.Clock.Sleep(d)
	}
	return Report{
		CS: cs, Size: size, Backend: Remote, Network: opts.Link.Name(),
		Total: sw.Elapsed(), Parts: parts,
	}, nil
}

// MsgKind is the server-side action class of a wire message.
type MsgKind int

// Message classes, by the device work they imply.
const (
	// MsgControl is pure bookkeeping (init, malloc, free, finalize).
	MsgControl MsgKind = iota
	// MsgMemcpyIn carries an input payload the server moves over PCIe.
	MsgMemcpyIn
	// MsgMemcpyOut returns an output payload after a PCIe read-back.
	MsgMemcpyOut
	// MsgLaunch triggers a kernel execution.
	MsgLaunch
)

// WireMsg is one request/response pair of a session, in Table I payload
// bytes, tagged with the device work it implies. A zero Recv means the
// request has no response (finalization).
type WireMsg struct {
	Send, Recv int64
	Kind       MsgKind
}

// Schedule lists every message of a case-study session in order, with
// Table I payload sizes — exactly the traffic the functional path
// generates, plus nothing.
func Schedule(cs calib.CaseStudy, size int) []WireMsg {
	var msgs []WireMsg
	for _, row := range perfmodel.TableII(cs, size, netsim.GigaE()) {
		kind := MsgControl
		switch row.Op {
		case protocol.OpMemcpyToDevice:
			kind = MsgMemcpyIn
		case protocol.OpMemcpyToHost:
			kind = MsgMemcpyOut
		case protocol.OpLaunch:
			kind = MsgLaunch
		}
		for i := 0; i < row.Count; i++ {
			msgs = append(msgs, WireMsg{Send: row.SendBytes, Recv: row.RecvBytes, Kind: kind})
		}
	}
	// Finalization: a 4-byte request with no response.
	return append(msgs, WireMsg{Send: 4, Kind: MsgControl})
}
