package workload

import (
	"testing"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
)

func BenchmarkAnalyticRemoteRun(b *testing.B) {
	link := netsim.IB40G()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(calib.MM, 8192, Remote, Options{Link: link}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFunctionalRemoteRun(b *testing.B) {
	link := netsim.IB40G()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := Run(calib.MM, 64, Remote, Options{Link: link, Functional: true, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if !r.Verified {
			b.Fatal("unverified")
		}
	}
}

func BenchmarkPipelinedAnalytic(b *testing.B) {
	link := netsim.IB40G()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunPipelined(8192, 8, Options{Link: link}); err != nil {
			b.Fatal(err)
		}
	}
}
