package workload

import (
	"math"
	"testing"

	"rcuda/internal/netsim"
	"rcuda/internal/perfmodel"
)

func runInference(t *testing.T, link *netsim.Link, batched bool) InferenceReport {
	t.Helper()
	rep, err := RunInference(InferenceOptions{Link: link, Batched: batched, Seed: 7})
	if err != nil {
		t.Fatalf("inference (%s, batched=%v): %v", link.Name(), batched, err)
	}
	if !rep.Verified {
		t.Fatalf("inference (%s, batched=%v): output not bit-exact against the oracle", link.Name(), batched)
	}
	return rep
}

// TestInferenceBatchedSpeedup is the optimization's acceptance test: at
// GigaE latencies the batched+cached session must finish the whole loop —
// setup and teardown included — at least 3x faster than the unbatched one,
// and produce bit-identical outputs.
func TestInferenceBatchedSpeedup(t *testing.T) {
	link := netsim.GigaE()
	plain := runInference(t, link, false)
	batched := runInference(t, link, true)

	if plain.Digest != batched.Digest {
		t.Fatalf("digest drift: unbatched %016x vs batched %016x", plain.Digest, batched.Digest)
	}
	speedup := float64(plain.Elapsed) / float64(batched.Elapsed)
	t.Logf("GigaE: unbatched %v, batched %v, speedup %.2fx (%d vs %d messages)",
		plain.Elapsed, batched.Elapsed, speedup, plain.Messages, batched.Messages)
	if speedup < 3 {
		t.Fatalf("batched speedup %.2fx at GigaE, want >= 3x", speedup)
	}
	if batched.Messages >= plain.Messages {
		t.Fatalf("batching did not reduce messages: %d vs %d", batched.Messages, plain.Messages)
	}

	// The batching and caching machinery actually carried the loop.
	// One frame per request carries its input copy, launches, and event
	// record.
	spec := batched.Spec
	coalesced := int64(spec.Requests * (spec.Layers + 2))
	if got, want := batched.Server.BatchFrames, int64(spec.Requests); got != want {
		t.Errorf("server executed %d batch frames, want %d", got, want)
	}
	if got := batched.Server.BatchedOps; got != coalesced {
		t.Errorf("server executed %d batched ops, want %d", got, coalesced)
	}
	if got := batched.Client.OpsCoalesced; got != coalesced {
		t.Errorf("client coalesced %d ops, want %d", got, coalesced)
	}
	// One properties poll per request: the first fills the cache, the rest
	// never reach the wire.
	if batched.Client.CacheMisses != 1 || batched.Client.CacheHits != int64(spec.Requests-1) {
		t.Errorf("cache stats %+v, want 1 miss and %d hits", batched.Client, spec.Requests-1)
	}
	if plain.Client.OpsCoalesced != 0 || plain.Client.CacheHits != 0 {
		t.Errorf("unbatched session touched batching machinery: %+v", plain.Client)
	}
}

// TestInferenceScheduleMatchesWire pins perfmodel's analytic schedule to
// the functional wire, message count and byte totals both, in both modes.
// Any drift between the modeled and the real traffic fails here.
func TestInferenceScheduleMatchesWire(t *testing.T) {
	for _, batched := range []bool{false, true} {
		rep := runInference(t, netsim.GigaE(), batched)
		msgs, send, recv := perfmodel.InferenceTotals(rep.Spec)
		if rep.Messages != int64(msgs) {
			t.Errorf("batched=%v: wire carried %d messages, schedule says %d", batched, rep.Messages, msgs)
		}
		if rep.BytesSent != send || rep.BytesRecv != recv {
			t.Errorf("batched=%v: wire moved %d/%d bytes, schedule says %d/%d",
				batched, rep.BytesSent, rep.BytesRecv, send, recv)
		}
	}
}

// TestInferenceModelCrossValidation validates the batched-path latency
// model against the simulator the way Table IV validates the memcpy model
// against the testbed: build from a measured run on one network, predict
// the other, compare against its measured run — in both directions and both
// modes.
func TestInferenceModelCrossValidation(t *testing.T) {
	gige, ib := netsim.GigaE(), netsim.IB40G()
	for _, batched := range []bool{false, true} {
		onGigE := runInference(t, gige, batched)
		onIB := runInference(t, ib, batched)
		if onGigE.Digest != onIB.Digest {
			t.Fatalf("batched=%v: results depend on the interconnect", batched)
		}
		cross := []struct {
			source, target         *netsim.Link
			measuredSrc, measuredT InferenceReport
		}{
			{gige, ib, onGigE, onIB},
			{ib, gige, onIB, onGigE},
		}
		for _, c := range cross {
			m, err := perfmodel.BuildInference(c.measuredSrc.Spec, c.source, c.measuredSrc.Elapsed)
			if err != nil {
				t.Fatalf("batched=%v build on %s: %v", batched, c.source.Name(), err)
			}
			// The loop's device work hides behind wire time, so the
			// extracted fixed time must be a sliver of the session.
			if fixed := m.Fixed(); fixed < 0 || fixed > c.measuredSrc.Elapsed/50 {
				t.Errorf("batched=%v: fixed time %v out of [0, 2%%] of %v",
					batched, fixed, c.measuredSrc.Elapsed)
			}
			est := m.Estimate(c.target)
			relErr := math.Abs(float64(est-c.measuredT.Elapsed)) / float64(c.measuredT.Elapsed)
			t.Logf("batched=%v %s->%s: estimated %v, measured %v, error %.3f%%",
				batched, c.source.Name(), c.target.Name(), est, c.measuredT.Elapsed, relErr*100)
			if relErr > 0.01 {
				t.Errorf("batched=%v %s->%s: estimate %v vs measured %v, error %.2f%% > 1%%",
					batched, c.source.Name(), c.target.Name(), est, c.measuredT.Elapsed, relErr*100)
			}
		}
	}
}

// TestInferencePollsRideTheCacheNot ensures event polls stay real round
// trips (completion status can change; it must never be cached) while the
// loop still benefits: extra polls cost the same in both modes.
func TestInferencePollsRideTheCacheNot(t *testing.T) {
	link := netsim.GigaE()
	base, err := RunInference(InferenceOptions{Link: link, Batched: true, Polls: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	more, err := RunInference(InferenceOptions{Link: link, Batched: true, Polls: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	extra := more.Messages - base.Messages
	if want := int64(2 * base.Spec.Requests); extra != want {
		t.Fatalf("2 extra polls per request added %d messages, want %d", extra, want)
	}
	if base.Digest != more.Digest {
		t.Fatal("poll count changed the computation")
	}
}
