package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"rcuda/internal/blas"
	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/fft"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
	"rcuda/internal/rcuda"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// maxFunctionalSize bounds functional runs: an MM run at 1024 already moves
// 12 MiB through the middleware and 2·1024³ real floating-point operations
// through the kernel. The paper-scale sweeps use the analytic mode.
const maxFunctionalSize = 1024

func checkFunctionalSize(cs calib.CaseStudy, size int) error {
	if size > maxFunctionalSize {
		return fmt.Errorf("workload: functional %v run at size %d exceeds limit %d; use analytic mode",
			cs, size, maxFunctionalSize)
	}
	if cs == calib.MM && size%16 != 0 {
		return fmt.Errorf("workload: functional MM size %d must be a multiple of the 16x16 block", size)
	}
	return nil
}

// runLocalGPUFunctional drives the cudart.Local runtime with real data.
func runLocalGPUFunctional(cs calib.CaseStudy, size int, opts Options) (Report, error) {
	if err := checkFunctionalSize(cs, size); err != nil {
		return Report{}, err
	}
	sw := vclock.NewStopwatch(opts.Clock)
	dev := gpu.New(gpu.Config{Clock: opts.Clock, Jitter: opts.Noise})
	mod, err := kernels.ModuleFor(cs)
	if err != nil {
		return Report{}, err
	}
	var open []cudart.LocalOption
	if calib.LocalInit(cs) == 0 {
		open = append(open, cudart.Preinitialized())
	}
	rt, err := cudart.OpenLocal(dev, mod, open...)
	if err != nil {
		return Report{}, err
	}
	defer rt.Close()

	verified, err := executeOnRuntime(cs, size, rt, opts)
	if err != nil {
		return Report{}, err
	}
	return Report{
		CS: cs, Size: size, Backend: LocalGPU,
		Total:    sw.Elapsed(),
		Verified: verified,
		Parts: Breakdown{
			Init:    calib.LocalInit(cs),
			DataGen: calib.DataGenTime(cs, size),
			PCIe:    time.Duration(calib.CopyCount(cs)) * calib.PCIeTime(cs, size),
			Kernel:  calib.KernelTime(cs, size),
			Mgmt:    calib.Mgmt,
		},
	}, nil
}

// runRemoteFunctional drives the full middleware — client, wire, server,
// device — over a simulated interconnect sharing the run's clock.
func runRemoteFunctional(cs calib.CaseStudy, size int, opts Options) (Report, error) {
	if err := checkFunctionalSize(cs, size); err != nil {
		return Report{}, err
	}
	sw := vclock.NewStopwatch(opts.Clock)
	dev := gpu.New(gpu.Config{Clock: opts.Clock, Jitter: opts.Noise})
	server := rcuda.NewServer(dev)
	cliEnd, srvEnd := transport.Pipe(opts.Link, opts.Clock, opts.Noise)
	serveDone := make(chan error, 1)
	go func() { serveDone <- server.ServeConn(srvEnd) }()

	mod, err := kernels.ModuleFor(cs)
	if err != nil {
		return Report{}, err
	}
	img, err := mod.Binary()
	if err != nil {
		return Report{}, err
	}
	var copts []rcuda.ClientOption
	if opts.Observer != nil {
		copts = append(copts, rcuda.WithObserver(opts.Observer))
	}
	client, err := rcuda.Open(cliEnd, img, copts...)
	if err != nil {
		return Report{}, err
	}

	// The middleware's host-side marshaling cost, charged up front (in the
	// real middleware it is spread across the calls).
	opts.Clock.Sleep(opts.perturb(calib.MarshalTime(cs, size)))

	verified, runErr := executeOnRuntime(cs, size, client, opts)
	closeErr := client.Close()
	if err := <-serveDone; err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		return Report{}, runErr
	}
	if closeErr != nil {
		return Report{}, closeErr
	}
	if inUse := dev.MemoryInUse(); inUse != 0 {
		return Report{}, fmt.Errorf("workload: %d bytes leaked on the device", inUse)
	}
	return Report{
		CS: cs, Size: size, Backend: Remote, Network: opts.Link.Name(),
		Total:    sw.Elapsed(),
		Verified: verified,
		Parts: Breakdown{
			DataGen: calib.DataGenTime(cs, size),
			Marshal: calib.MarshalTime(cs, size),
			PCIe:    time.Duration(calib.CopyCount(cs)) * calib.PCIeTime(cs, size),
			Kernel:  calib.KernelTime(cs, size),
			Mgmt:    calib.Mgmt,
		},
	}, nil
}

// ExecuteFunctional performs the case study's execution phases — alloc,
// transfer, launch, read back, free — against any cudart.Runtime with real
// data, verifying the result against the CPU oracle. Unlike Run it charges
// no clock time for data generation or management: the caller owns the
// schedule, which is what the broker's live-makespan harness needs.
func ExecuteFunctional(cs calib.CaseStudy, size int, rt cudart.Runtime, seed int64) (bool, error) {
	if err := checkFunctionalSize(cs, size); err != nil {
		return false, err
	}
	switch cs {
	case calib.MM:
		return executeMM(size, rt, seed)
	default:
		return executeFFT(size, rt, seed)
	}
}

// executeOnRuntime performs the case study's seven-phase execution against
// any cudart.Runtime (local or remote) and verifies the result against the
// CPU oracle. It charges data generation and management time on the run's
// clock; PCIe, kernel, and (for remote runtimes) wire time are charged by
// the layers below.
func executeOnRuntime(cs calib.CaseStudy, size int, rt cudart.Runtime, opts Options) (bool, error) {
	opts.Clock.Sleep(opts.perturb(calib.DataGenTime(cs, size)))
	defer opts.Clock.Sleep(opts.perturb(calib.Mgmt))
	switch cs {
	case calib.MM:
		return executeMM(size, rt, opts.Seed)
	default:
		return executeFFT(size, rt, opts.Seed)
	}
}

func executeMM(m int, rt cudart.Runtime, seed int64) (bool, error) {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float32, m*m)
	b := make([]float32, m*m)
	for i := range a {
		a[i] = rng.Float32()*2 - 1
		b[i] = rng.Float32()*2 - 1
	}
	nbytes := uint32(4 * m * m)
	ptrs := make([]cudart.DevicePtr, 3)
	for i := range ptrs {
		p, err := rt.Malloc(nbytes)
		if err != nil {
			return false, err
		}
		ptrs[i] = p
	}
	if err := rt.MemcpyToDevice(ptrs[0], cudart.Float32Bytes(a)); err != nil {
		return false, err
	}
	if err := rt.MemcpyToDevice(ptrs[1], cudart.Float32Bytes(b)); err != nil {
		return false, err
	}
	grid := cudart.Dim3{X: uint32(m / 16), Y: uint32(m / 16)}
	block := cudart.Dim3{X: 16, Y: 16}
	if err := rt.Launch(kernels.SgemmKernel, grid, block, 0,
		gpu.PackParams(uint32(ptrs[0]), uint32(ptrs[1]), uint32(ptrs[2]), uint32(m))); err != nil {
		return false, err
	}
	out := make([]byte, nbytes)
	if err := rt.MemcpyToHost(out, ptrs[2]); err != nil {
		return false, err
	}
	for _, p := range ptrs {
		if err := rt.Free(p); err != nil {
			return false, err
		}
	}
	// Verify against the independent CPU implementation.
	want := make([]float32, m*m)
	if err := blas.Sgemm(m, m, m, a, b, want); err != nil {
		return false, err
	}
	got := cudart.BytesFloat32(out)
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-3*float64(m) {
			return false, fmt.Errorf("workload: MM result mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
	return true, nil
}

func executeFFT(batch int, rt cudart.Runtime, seed int64) (bool, error) {
	rng := rand.New(rand.NewSource(seed))
	signal := make([]complex64, batch*fft.Points)
	for i := range signal {
		signal[i] = complex(rng.Float32()*2-1, rng.Float32()*2-1)
	}
	raw := cudart.Complex64Bytes(signal)
	ptr, err := rt.Malloc(uint32(len(raw)))
	if err != nil {
		return false, err
	}
	if err := rt.MemcpyToDevice(ptr, raw); err != nil {
		return false, err
	}
	if err := rt.Launch(kernels.FFTKernel, cudart.Dim3{X: uint32(batch)}, cudart.Dim3{X: 64}, 0,
		gpu.PackParams(uint32(ptr), uint32(batch), 0)); err != nil {
		return false, err
	}
	out := make([]byte, len(raw))
	if err := rt.MemcpyToHost(out, ptr); err != nil {
		return false, err
	}
	if err := rt.Free(ptr); err != nil {
		return false, err
	}
	// Verify against the independent CPU implementation.
	want := append([]complex64(nil), signal...)
	if err := fft.TransformBatch(fft.Forward, want, fft.Points); err != nil {
		return false, err
	}
	gotF := cudart.BytesFloat32(out)
	for i := range want {
		gr, gi := gotF[2*i], gotF[2*i+1]
		if math.Abs(float64(gr-real(want[i]))) > 1e-2 || math.Abs(float64(gi-imag(want[i]))) > 1e-2 {
			return false, fmt.Errorf("workload: FFT result mismatch at point %d", i)
		}
	}
	return true, nil
}
