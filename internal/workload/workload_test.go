package workload

import (
	"math"
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
	"rcuda/internal/perfmodel"
	"rcuda/internal/trace"
	"rcuda/internal/vclock"
)

func sec(d time.Duration) float64 { return d.Seconds() }

func relClose(t *testing.T, got, want time.Duration, tol float64, msg string) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", msg)
	}
	if rel := math.Abs(sec(got)-sec(want)) / sec(want); rel > tol {
		t.Fatalf("%s: got %v, want %v (%.2f%% off, tol %.2f%%)", msg, got, want, rel*100, tol*100)
	}
}

// The noiseless simulator must land on the paper's measured columns.
func TestAnalyticCPUMatchesPaper(t *testing.T) {
	for _, cs := range []calib.CaseStudy{calib.MM, calib.FFT} {
		for _, size := range calib.Sizes(cs) {
			r, err := Run(cs, size, CPU, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, _ := calib.PaperCPU(cs, size)
			relClose(t, r.Total, want, 1e-6, cs.String()+" CPU")
		}
	}
}

func TestAnalyticLocalGPUMatchesPaper(t *testing.T) {
	for _, cs := range []calib.CaseStudy{calib.MM, calib.FFT} {
		for _, size := range calib.Sizes(cs) {
			r, err := Run(cs, size, LocalGPU, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, _ := calib.PaperGPU(cs, size)
			relClose(t, r.Total, want, 1e-6, cs.String()+" local GPU")
		}
	}
}

// The full simulated remote executions must land near the paper's measured
// GigaE and 40GI columns (within a few percent; the paper's own
// measurements carry up to ~1s of standard deviation).
func TestAnalyticRemoteMatchesPaperMeasured(t *testing.T) {
	for _, netName := range []string{"GigaE", "40GI"} {
		link, err := netsim.ByName(netName)
		if err != nil {
			t.Fatal(err)
		}
		for _, cs := range []calib.CaseStudy{calib.MM, calib.FFT} {
			for _, size := range calib.Sizes(cs) {
				r, err := Run(cs, size, Remote, Options{Link: link})
				if err != nil {
					t.Fatal(err)
				}
				want, _ := calib.PaperMeasured(cs, netName, size)
				relClose(t, r.Total, want, 0.04, cs.String()+" remote "+netName)
			}
		}
	}
}

// The paper's headline observation at m=4096: remote over 40GI beats the
// local GPU because the daemon pre-initializes the CUDA context.
func TestRemote40GIBeatsLocalGPUAtSmallestMM(t *testing.T) {
	local, err := Run(calib.MM, 4096, LocalGPU, Options{})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := Run(calib.MM, 4096, Remote, Options{Link: netsim.IB40G()})
	if err != nil {
		t.Fatal(err)
	}
	if remote.Total >= local.Total {
		t.Fatalf("remote 40GI (%v) should beat local GPU (%v) at m=4096", remote.Total, local.Total)
	}
}

// Functional and analytic modes must agree exactly when noise is off.
func TestFunctionalMatchesAnalytic(t *testing.T) {
	for _, cs := range []calib.CaseStudy{calib.MM, calib.FFT} {
		size := 64
		for _, tc := range []struct {
			backend Backend
			link    *netsim.Link
		}{
			{LocalGPU, nil},
			{Remote, netsim.IB40G()},
			{Remote, netsim.GigaE()},
		} {
			analytic, err := Run(cs, size, tc.backend, Options{Link: tc.link})
			if err != nil {
				t.Fatal(err)
			}
			functional, err := Run(cs, size, tc.backend, Options{Link: tc.link, Functional: true})
			if err != nil {
				t.Fatal(err)
			}
			if !functional.Verified {
				t.Fatalf("%v %v: functional run not verified", cs, tc.backend)
			}
			relClose(t, functional.Total, analytic.Total, 1e-6,
				cs.String()+" "+tc.backend.String()+" functional vs analytic")
		}
	}
}

func TestFunctionalRejectsPaperScale(t *testing.T) {
	if _, err := Run(calib.MM, 4096, Remote, Options{Link: netsim.GigaE(), Functional: true}); err == nil {
		t.Fatal("paper-scale functional run must be rejected")
	}
	if _, err := Run(calib.MM, 48+1, LocalGPU, Options{Functional: true}); err == nil {
		t.Fatal("non-multiple-of-16 MM functional size must be rejected")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(calib.MM, 0, CPU, Options{}); err == nil {
		t.Fatal("zero size must fail")
	}
	if _, err := Run(calib.MM, 64, Remote, Options{}); err == nil {
		t.Fatal("remote without a link must fail")
	}
	if _, err := Run(calib.MM, 64, Backend(42), Options{}); err == nil {
		t.Fatal("unknown backend must fail")
	}
}

func TestBackendStrings(t *testing.T) {
	if CPU.String() != "CPU" || LocalGPU.String() != "GPU" || Remote.String() != "rCUDA" {
		t.Fatal("backend names")
	}
	if Backend(9).String() == "" {
		t.Fatal("unknown backend must format")
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	r, err := Run(calib.FFT, 2048, Remote, Options{Link: netsim.GigaE()})
	if err != nil {
		t.Fatal(err)
	}
	sum := r.Parts.Init + r.Parts.DataGen + r.Parts.Marshal + r.Parts.Network +
		r.Parts.PCIe + r.Parts.Kernel + r.Parts.Compute + r.Parts.Mgmt
	if sum != r.Total {
		t.Fatalf("breakdown sums to %v, total %v", sum, r.Total)
	}
}

func TestNoiseChangesTotalsDeterministically(t *testing.T) {
	a, err := Run(calib.MM, 8192, Remote, Options{Link: netsim.GigaE(), Noise: netsim.NewNoise(7, 0.01)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(calib.MM, 8192, Remote, Options{Link: netsim.GigaE(), Noise: netsim.NewNoise(7, 0.01)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total {
		t.Fatal("same seed must reproduce the same run")
	}
	c, err := Run(calib.MM, 8192, Remote, Options{Link: netsim.GigaE(), Noise: netsim.NewNoise(8, 0.01)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Total == c.Total {
		t.Fatal("different seeds should differ")
	}
	// Noise should stay in the few-percent band.
	relClose(t, c.Total, a.Total, 0.1, "noise magnitude")
}

func TestMeasureMeanAveragesRuns(t *testing.T) {
	s, err := MeasureMean(calib.FFT, 2048, Remote,
		Options{Link: netsim.IB40G(), Noise: netsim.NewNoise(1, 0.01)}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 10 {
		t.Fatalf("summary over %d samples", s.N)
	}
	want, _ := calib.PaperMeasured(calib.FFT, "40GI", 2048)
	relClose(t, time.Duration(s.Mean*float64(time.Second)), want, 0.05, "mean vs paper")
	if s.StdDev <= 0 {
		t.Fatal("noisy runs must show spread")
	}
}

func TestMeasureSeriesFeedsModel(t *testing.T) {
	// End-to-end methodology: measure the series on both networks with the
	// simulator, build the model, cross-validate, and check the error
	// shape matches the paper (small for MM, large for small-batch FFT).
	ge, ib := netsim.GigaE(), netsim.IB40G()
	geMeas, err := MeasureSeries(calib.FFT, Remote, Options{Link: ge, Noise: netsim.NewNoise(1, 0.005)}, 5)
	if err != nil {
		t.Fatal(err)
	}
	ibMeas, err := MeasureSeries(calib.FFT, Remote, Options{Link: ib, Noise: netsim.NewNoise(2, 0.005)}, 5)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := perfmodel.CrossValidate(calib.FFT, ge, ib, geMeas, ibMeas)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].RelativeErrorPc < 15 {
		t.Fatalf("simulated FFT 2048 cross-validation error %.1f%% should be large (paper: 33.95%%)",
			rows[0].RelativeErrorPc)
	}
	last := rows[len(rows)-1]
	if last.RelativeErrorPc > 15 {
		t.Fatalf("simulated FFT 16384 error %.1f%% should shrink (paper: 5.77%%)", last.RelativeErrorPc)
	}
}

func TestObserverTracesFunctionalRemote(t *testing.T) {
	clk := vclock.NewSim()
	rec := trace.NewRecorder(clk)
	r, err := Run(calib.MM, 64, Remote, Options{
		Link:       netsim.IB40G(),
		Functional: true,
		Clock:      clk,
		Observer:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Fatal("functional run must verify")
	}
	events := rec.Events()
	// init + 3 malloc + 2 h2d + launch + d2h + 3 free + finalize = 12.
	if len(events) != 12 {
		t.Fatalf("traced %d calls, want 12", len(events))
	}
	bd := rec.PhaseBreakdown(0)
	var total time.Duration
	for _, b := range bd {
		total += b.Time
	}
	if total == 0 {
		t.Fatal("trace must attribute time to phases")
	}
}

// The Table VI grid produced by the simulator: remote MM on every target
// network must beat the CPU (GPU-worthy) while FFT must not.
func TestTableVIShapeAcrossTargets(t *testing.T) {
	geMeas, err := MeasureSeries(calib.MM, Remote, Options{Link: netsim.GigaE()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := perfmodel.Build(calib.MM, netsim.GigaE(), geMeas)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range netsim.Targets() {
		for _, size := range calib.Sizes(calib.MM)[2:] { // m >= 8192
			est, err := model.Estimate(target, size)
			if err != nil {
				t.Fatal(err)
			}
			cpu, _ := calib.PaperCPU(calib.MM, size)
			if est >= cpu {
				t.Fatalf("MM %d on %s: remote %v should beat CPU %v", size, target.Name(), est, cpu)
			}
		}
	}
}
