package workload

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"rcuda/internal/blas"
	"rcuda/internal/calib"
	"rcuda/internal/cudart"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
	"rcuda/internal/netsim"
	"rcuda/internal/perfmodel"
	"rcuda/internal/rcuda"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
)

// This file adds the third case study: a DNN inference loop, the AI-style
// workload the paper's one-round-trip-per-call protocol handles worst. Each
// request pushes a 16×16 activation matrix through a stack of dense layers
// — one tiny sgemm launch per layer — then records an event, synchronizes,
// polls completion, and reads the output back. Per call the device does
// nanoseconds of work and the wire charges a full round trip, so remote
// time is nearly pure network latency: exactly the traffic
// rcuda.WithBatching coalesces and its query cache absorbs.

// Default inference-loop shape: deep enough that launches dominate the
// session, enough requests to amortize the (unbatched-cost) setup.
const (
	DefaultInferenceLayers   = 24
	DefaultInferenceRequests = 32
	DefaultInferencePolls    = 1
)

// InferenceRuntime is the runtime surface the inference loop needs:
// streams, events, and async copies for the hot path, plus the device
// queries a serving loop polls.
type InferenceRuntime interface {
	cudart.AsyncRuntime
	cudart.DeviceRuntime
}

// InferenceOptions configures one inference session.
type InferenceOptions struct {
	// Link is the interconnect between application and GPU.
	Link *netsim.Link
	// Clock overrides the time source; a fresh virtual clock by default.
	Clock vclock.Clock
	// Batched opens the session with rcuda.WithBatching (which also
	// enables the device-query cache).
	Batched bool
	// Layers, Requests, Polls override the default loop shape when
	// positive.
	Layers, Requests, Polls int
	// Seed drives weight and input generation; equal seeds produce
	// bit-identical sessions, so digests are comparable across runs.
	Seed int64
}

// InferenceReport is the outcome of one inference session.
type InferenceReport struct {
	Spec     perfmodel.InferenceSpec
	Network  string
	Elapsed  time.Duration
	Digest   uint64 // FNV-64a over every request's output bytes, in order
	Verified bool   // every output bit-exact against the CPU oracle
	Messages int64  // client-to-server wire messages
	// BytesSent/BytesRecv are the client connection's byte totals, for
	// cross-checking perfmodel's schedule against the real wire.
	BytesSent, BytesRecv int64
	Client               rcuda.ClientStats
	Server               rcuda.ServerStats
}

// ExecuteInference runs the inference loop against any runtime with real
// data: uploads the weight stack, then for each request streams the input
// in, launches every layer, synchronizes through an event, polls it, reads
// the output back, and verifies it bit-exactly against a CPU oracle (the
// simulated kernel and the oracle share the same sgemm routine, so equal
// inputs produce identical bits). It returns an order-sensitive FNV-64a
// digest of all outputs, the cross-run comparison handle.
func ExecuteInference(rt InferenceRuntime, layers, requests, polls int, seed int64) (uint64, bool, error) {
	const dim = perfmodel.InferenceDim
	nbytes := uint32(4 * dim * dim)
	rng := rand.New(rand.NewSource(seed))
	randMatrix := func() []float32 {
		m := make([]float32, dim*dim)
		for i := range m {
			m[i] = rng.Float32()*2 - 1
		}
		return m
	}

	// Weight stack: one device buffer per layer, uploaded synchronously
	// once — the model is resident across requests, as in a serving loop.
	// (Deliberately not async+batched: coalescing the whole stack would
	// build a frame large enough to leave GigaE's small-message regime and
	// pay its TCP-window excess, slower than the separate sends.)
	weights := make([][]float32, layers)
	ptrs := make([]cudart.DevicePtr, 0, layers+2)
	for l := range weights {
		weights[l] = randMatrix()
		p, err := rt.Malloc(nbytes)
		if err != nil {
			return 0, false, err
		}
		ptrs = append(ptrs, p)
		if err := rt.MemcpyToDevice(p, cudart.Float32Bytes(weights[l])); err != nil {
			return 0, false, err
		}
	}
	// Two activation buffers, ping-ponged between layers.
	var act [2]cudart.DevicePtr
	for i := range act {
		p, err := rt.Malloc(nbytes)
		if err != nil {
			return 0, false, err
		}
		act[i] = p
		ptrs = append(ptrs, p)
	}
	stream, err := rt.StreamCreate()
	if err != nil {
		return 0, false, err
	}
	event, err := rt.EventCreate()
	if err != nil {
		return 0, false, err
	}

	digest := fnv.New64a()
	verified := true
	for r := 0; r < requests; r++ {
		// The poll a serving loop makes before sizing its launches; the
		// batched client's cache answers it locally after the first.
		props, err := rt.DeviceProperties()
		if err != nil {
			return 0, false, err
		}
		if props.Name == "" {
			return 0, false, fmt.Errorf("workload: device reported no name")
		}
		input := randMatrix()
		if err := rt.MemcpyToDeviceAsync(act[0], cudart.Float32Bytes(input), stream); err != nil {
			return 0, false, err
		}
		cur, nxt := act[0], act[1]
		for l := 0; l < layers; l++ {
			if err := rt.LaunchAsync(kernels.SgemmKernel,
				cudart.Dim3{X: 1, Y: 1}, cudart.Dim3{X: dim, Y: dim}, 0,
				gpu.PackParams(uint32(ptrs[l]), uint32(cur), uint32(nxt), dim), stream); err != nil {
				return 0, false, err
			}
			cur, nxt = nxt, cur
		}
		if err := rt.EventRecord(event, stream); err != nil {
			return 0, false, err
		}
		if err := rt.EventSynchronize(event); err != nil {
			return 0, false, err
		}
		for p := 0; p < polls; p++ {
			if err := rt.EventQuery(event); err != nil {
				return 0, false, fmt.Errorf("workload: event poll after synchronize: %w", err)
			}
		}
		out := make([]byte, nbytes)
		if err := rt.MemcpyToHost(out, cur); err != nil {
			return 0, false, err
		}
		// CPU oracle: the same layer stack applied with the same sgemm
		// routine the simulated kernel uses, so the comparison is
		// bit-exact, not tolerance-based.
		want := input
		for l := 0; l < layers; l++ {
			next := make([]float32, dim*dim)
			if err := blas.Sgemm(dim, dim, dim, weights[l], want, next); err != nil {
				return 0, false, err
			}
			want = next
		}
		if !bytes.Equal(out, cudart.Float32Bytes(want)) {
			verified = false
		}
		digest.Write(out)
	}

	if err := rt.EventDestroy(event); err != nil {
		return 0, false, err
	}
	if err := rt.StreamDestroy(stream); err != nil {
		return 0, false, err
	}
	for _, p := range ptrs {
		if err := rt.Free(p); err != nil {
			return 0, false, err
		}
	}
	return digest.Sum64(), verified, nil
}

// RunInference runs one inference session through the full middleware —
// client, wire, server, simulated device — over a modeled interconnect
// sharing the run's clock, and reports its (simulated) time alongside the
// spec perfmodel needs to price the same session analytically.
func RunInference(opts InferenceOptions) (InferenceReport, error) {
	if opts.Link == nil {
		return InferenceReport{}, fmt.Errorf("workload: inference needs a network link")
	}
	if opts.Clock == nil {
		opts.Clock = vclock.NewSim()
	}
	if opts.Layers <= 0 {
		opts.Layers = DefaultInferenceLayers
	}
	if opts.Requests <= 0 {
		opts.Requests = DefaultInferenceRequests
	}
	if opts.Polls <= 0 {
		opts.Polls = DefaultInferencePolls
	}

	dev := gpu.New(gpu.Config{Clock: opts.Clock})
	server := rcuda.NewServer(dev)
	cliEnd, srvEnd := transport.Pipe(opts.Link, opts.Clock, nil)
	serveDone := make(chan error, 1)
	go func() { serveDone <- server.ServeConn(srvEnd) }()

	mod, err := kernels.ModuleFor(calib.MM)
	if err != nil {
		return InferenceReport{}, err
	}
	img, err := mod.Binary()
	if err != nil {
		return InferenceReport{}, err
	}
	var copts []rcuda.ClientOption
	if opts.Batched {
		copts = append(copts, rcuda.WithBatching(0, 0))
	}
	sw := vclock.NewStopwatch(opts.Clock)
	client, err := rcuda.Open(cliEnd, img, copts...)
	if err != nil {
		return InferenceReport{}, err
	}
	digest, ok, runErr := ExecuteInference(client, opts.Layers, opts.Requests, opts.Polls, opts.Seed)
	closeErr := client.Close()
	elapsed := sw.Elapsed()
	if err := <-serveDone; err != nil && runErr == nil {
		runErr = err
	}
	if runErr != nil {
		return InferenceReport{}, runErr
	}
	if closeErr != nil {
		return InferenceReport{}, closeErr
	}
	if inUse := dev.MemoryInUse(); inUse != 0 {
		return InferenceReport{}, fmt.Errorf("workload: %d bytes leaked on the device", inUse)
	}
	wire := cliEnd.Stats()
	return InferenceReport{
		Spec: perfmodel.InferenceSpec{
			ModuleBytes: len(img),
			Layers:      opts.Layers,
			Requests:    opts.Requests,
			Polls:       opts.Polls,
			Batched:     opts.Batched,
			DeviceName:  dev.Name(),
		},
		Network:   opts.Link.Name(),
		Elapsed:   elapsed,
		Digest:    digest,
		Verified:  ok,
		Messages:  wire.MessagesSent,
		BytesSent: wire.BytesSent,
		BytesRecv: wire.BytesRecv,
		Client:    client.Stats(),
		Server:    server.Stats(),
	}, nil
}
