package workload

import (
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
)

func TestPipelinedValidation(t *testing.T) {
	if _, err := RunPipelined(2048, 4, Options{}); err == nil {
		t.Fatal("missing link must fail")
	}
	link := netsim.IB40G()
	if _, err := RunPipelined(2048, 1, Options{Link: link}); err == nil {
		t.Fatal("single chunk must fail")
	}
	if _, err := RunPipelined(100, 3, Options{Link: link}); err == nil {
		t.Fatal("indivisible batch must fail")
	}
}

func TestPipelinedFunctionalMatchesAnalytic(t *testing.T) {
	for _, netName := range []string{"40GI", "GigaE"} {
		link, err := netsim.ByName(netName)
		if err != nil {
			t.Fatal(err)
		}
		analytic, err := RunPipelined(512, 4, Options{Link: link})
		if err != nil {
			t.Fatal(err)
		}
		functional, err := RunPipelined(512, 4, Options{Link: link, Functional: true})
		if err != nil {
			t.Fatal(err)
		}
		if !functional.Verified {
			t.Fatalf("%s: pipelined functional run not verified", netName)
		}
		diff := functional.Total - analytic.Total
		if diff < 0 {
			diff = -diff
		}
		if diff > analytic.Total/1000 {
			t.Fatalf("%s: functional %v vs analytic %v differ by %v",
				netName, functional.Total, analytic.Total, diff)
		}
	}
}

func TestPipeliningBeatsSynchronousOnFastNetworks(t *testing.T) {
	// Over 40GI the wire is fast enough that the device engines are the
	// bottleneck, so overlap helps.
	link := netsim.IB40G()
	for _, size := range calib.Sizes(calib.FFT) {
		sync, err := Run(calib.FFT, size, Remote, Options{Link: link})
		if err != nil {
			t.Fatal(err)
		}
		piped, err := RunPipelined(size, 8, Options{Link: link})
		if err != nil {
			t.Fatal(err)
		}
		if piped.Total >= sync.Total {
			t.Fatalf("batch %d: pipelined %v should beat synchronous %v on 40GI",
				size, piped.Total, sync.Total)
		}
	}
}

func TestPipeliningGainsShrinkOnSlowNetworks(t *testing.T) {
	// On GigaE the wire dominates; overlap can only hide the device time,
	// so the relative gain must be smaller than on 40GI.
	const size = 8192
	gain := func(link *netsim.Link) float64 {
		sync, err := Run(calib.FFT, size, Remote, Options{Link: link})
		if err != nil {
			t.Fatal(err)
		}
		piped, err := RunPipelined(size, 8, Options{Link: link})
		if err != nil {
			t.Fatal(err)
		}
		return 1 - float64(piped.Total)/float64(sync.Total)
	}
	fast := gain(netsim.IB40G())
	slow := gain(netsim.GigaE())
	if fast <= slow {
		t.Fatalf("pipelining gain on 40GI (%.3f) should exceed GigaE (%.3f)", fast, slow)
	}
}

func TestPipelinedDeterministicWithNoise(t *testing.T) {
	link := netsim.IB40G()
	a, err := RunPipelined(2048, 4, Options{Link: link, Noise: netsim.NewNoise(3, 0.005)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPipelined(2048, 4, Options{Link: link, Noise: netsim.NewNoise(3, 0.005)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total {
		t.Fatal("same seed must reproduce the pipelined run")
	}
}

func TestPipelinedBreakdownPlausible(t *testing.T) {
	link := netsim.GigaE()
	r, err := RunPipelined(2048, 4, Options{Link: link})
	if err != nil {
		t.Fatal(err)
	}
	if r.Parts.Network <= 0 || r.Parts.DataGen <= 0 || r.Parts.Marshal <= 0 {
		t.Fatalf("breakdown %+v missing components", r.Parts)
	}
	if r.Parts.Network >= r.Total {
		t.Fatal("network time cannot exceed the total")
	}
	// The two payload directions dominate a GigaE run.
	wire2 := 2 * link.WireTime(calib.CopyBytes(calib.FFT, 2048))
	if r.Parts.Network < wire2/2 {
		t.Fatalf("network %v implausibly small vs payload %v", r.Parts.Network, wire2)
	}
	_ = time.Nanosecond
}
