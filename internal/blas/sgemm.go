// Package blas provides the single-precision dense linear algebra the case
// studies need: a cache-blocked, goroutine-parallel SGEMM standing in for
// the Intel MKL 10.1 the paper runs on its two quad-core Xeon E5520s, and a
// straightforward reference implementation used to validate it.
//
// Matrices are dense row-major float32 slices: element (i, j) of an m×n
// matrix A lives at A[i*n+j].
package blas

import (
	"fmt"
	"runtime"
	"sync"
)

// blockSize is the cache-blocking tile edge. 64×64 float32 tiles (16 KiB)
// fit comfortably in L1 alongside the accumulator row.
const blockSize = 64

// Sgemm computes C = A·B for row-major float32 matrices, where A is m×k,
// B is k×n and C is m×n. It parallelizes across row bands using all
// available CPUs, mirroring the paper's 8-core MKL runs.
func Sgemm(m, n, k int, a, b, c []float32) error {
	if err := checkDims(m, n, k, a, b, c); err != nil {
		return err
	}
	if m == 0 || n == 0 {
		return nil
	}
	for i := range c {
		c[i] = 0
	}
	if k == 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * m / workers
		hi := (w + 1) * m / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sgemmBand(lo, hi, n, k, a, b, c)
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// sgemmBand computes rows [lo, hi) of C with i-k-j loop ordering and k/j
// blocking, which streams B tiles through cache and keeps the inner loop a
// pure saxpy the compiler vectorizes well.
func sgemmBand(lo, hi, n, k int, a, b, c []float32) {
	for kk := 0; kk < k; kk += blockSize {
		kmax := kk + blockSize
		if kmax > k {
			kmax = k
		}
		for jj := 0; jj < n; jj += blockSize {
			jmax := jj + blockSize
			if jmax > n {
				jmax = n
			}
			for i := lo; i < hi; i++ {
				arow := a[i*k : i*k+k]
				crow := c[i*n : i*n+n]
				for kx := kk; kx < kmax; kx++ {
					aik := arow[kx]
					if aik == 0 {
						continue
					}
					brow := b[kx*n : kx*n+n]
					for j := jj; j < jmax; j++ {
						crow[j] += aik * brow[j]
					}
				}
			}
		}
	}
}

// SgemmNaive is the reference triple loop, used by tests as an oracle.
func SgemmNaive(m, n, k int, a, b, c []float32) error {
	if err := checkDims(m, n, k, a, b, c); err != nil {
		return err
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float32
			for kx := 0; kx < k; kx++ {
				sum += a[i*k+kx] * b[kx*n+j]
			}
			c[i*n+j] = sum
		}
	}
	return nil
}

func checkDims(m, n, k int, a, b, c []float32) error {
	if m < 0 || n < 0 || k < 0 {
		return fmt.Errorf("blas: negative dimension m=%d n=%d k=%d", m, n, k)
	}
	if len(a) != m*k {
		return fmt.Errorf("blas: A has %d elements, want %d (%dx%d)", len(a), m*k, m, k)
	}
	if len(b) != k*n {
		return fmt.Errorf("blas: B has %d elements, want %d (%dx%d)", len(b), k*n, k, n)
	}
	if len(c) != m*n {
		return fmt.Errorf("blas: C has %d elements, want %d (%dx%d)", len(c), m*n, m, n)
	}
	return nil
}

// Flops returns the floating-point operation count of an m×n×k GEMM,
// 2·m·n·k, used by performance reporting.
func Flops(m, n, k int) float64 { return 2 * float64(m) * float64(n) * float64(k) }
