package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, n int) []float32 {
	m := make([]float32, n)
	for i := range m {
		m[i] = rng.Float32()*2 - 1
	}
	return m
}

func maxAbsDiff(a, b []float32) float64 {
	var d float64
	for i := range a {
		if v := math.Abs(float64(a[i] - b[i])); v > d {
			d = v
		}
	}
	return d
}

func TestSgemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {16, 16, 16}, {64, 64, 64}, {65, 63, 67}, {128, 96, 200}, {1, 100, 1}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randMatrix(rng, m*k)
		b := randMatrix(rng, k*n)
		got := make([]float32, m*n)
		want := make([]float32, m*n)
		if err := Sgemm(m, n, k, a, b, got); err != nil {
			t.Fatalf("Sgemm(%v): %v", dims, err)
		}
		if err := SgemmNaive(m, n, k, a, b, want); err != nil {
			t.Fatal(err)
		}
		// Blocked summation reorders additions; allow accumulation
		// round-off proportional to k.
		if d := maxAbsDiff(got, want); d > 1e-4*float64(k) {
			t.Fatalf("Sgemm(%v) deviates from naive by %g", dims, d)
		}
	}
}

func TestSgemmIdentity(t *testing.T) {
	const n = 50
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, n*n)
	id := make([]float32, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	c := make([]float32, n*n)
	if err := Sgemm(n, n, n, a, id, c); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(c, a); d > 1e-6 {
		t.Fatalf("A·I deviates from A by %g", d)
	}
	if err := Sgemm(n, n, n, id, a, c); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(c, a); d > 1e-6 {
		t.Fatalf("I·A deviates from A by %g", d)
	}
}

func TestSgemmOverwritesC(t *testing.T) {
	// C must be overwritten, not accumulated into.
	m, n, k := 3, 3, 3
	a := make([]float32, 9)
	b := make([]float32, 9)
	c := []float32{9, 9, 9, 9, 9, 9, 9, 9, 9}
	if err := Sgemm(m, n, k, a, b, c); err != nil {
		t.Fatal(err)
	}
	for i, v := range c {
		if v != 0 {
			t.Fatalf("c[%d] = %g after zero GEMM, want 0", i, v)
		}
	}
}

func TestSgemmDegenerate(t *testing.T) {
	if err := Sgemm(0, 0, 0, nil, nil, nil); err != nil {
		t.Fatalf("empty GEMM: %v", err)
	}
	// k == 0: C = 0.
	c := []float32{5, 5}
	if err := Sgemm(1, 2, 0, nil, nil, c); err != nil {
		t.Fatal(err)
	}
	if c[0] != 0 || c[1] != 0 {
		t.Fatal("k=0 GEMM must zero C")
	}
}

func TestSgemmDimensionErrors(t *testing.T) {
	good := make([]float32, 4)
	if err := Sgemm(-1, 2, 2, good, good, good); err == nil {
		t.Fatal("negative dimension must error")
	}
	if err := Sgemm(2, 2, 2, good[:3], good, good); err == nil {
		t.Fatal("short A must error")
	}
	if err := Sgemm(2, 2, 2, good, good[:1], good); err == nil {
		t.Fatal("short B must error")
	}
	if err := Sgemm(2, 2, 2, good, good, good[:2]); err == nil {
		t.Fatal("short C must error")
	}
	if err := SgemmNaive(2, 2, 2, good, good, good[:2]); err == nil {
		t.Fatal("naive short C must error")
	}
}

func TestFlops(t *testing.T) {
	if got := Flops(4096, 4096, 4096); got != 2*4096.0*4096*4096 {
		t.Fatalf("Flops = %g", got)
	}
}

// Property: (A·B)·x == A·(B·x) for random square systems — an associativity
// check that exercises GEMM against matrix-vector products computed
// independently.
func TestSgemmAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(24)
		a := randMatrix(rng, n*n)
		b := randMatrix(rng, n*n)
		x := randMatrix(rng, n)

		ab := make([]float32, n*n)
		if Sgemm(n, n, n, a, b, ab) != nil {
			return false
		}
		// lhs = (A·B)·x
		lhs := matVec(ab, x, n)
		// rhs = A·(B·x)
		rhs := matVec(a, matVec(b, x, n), n)
		for i := range lhs {
			if math.Abs(float64(lhs[i]-rhs[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func matVec(a, x []float32, n int) []float32 {
	y := make([]float32, n)
	for i := 0; i < n; i++ {
		var s float32
		for j := 0; j < n; j++ {
			s += a[i*n+j] * x[j]
		}
		y[i] = s
	}
	return y
}

func BenchmarkSgemm256(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n = 256
	a := randMatrix(rng, n*n)
	bm := randMatrix(rng, n*n)
	c := make([]float32, n*n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Sgemm(n, n, n, a, bm, c); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(3 * 4 * n * n))
}
