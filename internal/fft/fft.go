// Package fft implements the batched one-dimensional complex FFT of the
// paper's second case study: many independent 512-point single-precision
// transforms computed in parallel, standing in for FFTW 3.2.2 on the CPU
// and Volkov's FFT kernel on the GPU.
//
// Transforms are radix-2 decimation-in-time with precomputed twiddle
// tables; batches are parallelized across goroutines. A naive O(n²) DFT
// serves as the correctness oracle in tests.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sync"
)

// Points is the transform length of the paper's case study: "we compute 512
// points on each FFT operation", each point a single-precision complex
// (8 bytes), so a batch of n transforms moves 4096·n bytes per direction.
const Points = 512

// BytesPerTransform is the wire size of one 512-point transform.
const BytesPerTransform = Points * 8

// Direction selects forward or inverse transforms.
type Direction int

// Transform directions.
const (
	Forward Direction = iota
	Inverse
)

// plan caches the bit-reversal permutation and twiddle factors for a size.
type plan struct {
	n       int
	rev     []int
	twiddle []complex64 // twiddle[k] = exp(-2πik/n)
}

var plans sync.Map // int -> *plan

func planFor(n int) (*plan, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: size %d is not a positive power of two", n)
	}
	if p, ok := plans.Load(n); ok {
		return p.(*plan), nil
	}
	p := &plan{n: n, rev: make([]int, n), twiddle: make([]complex64, n/2)}
	shift := 64 - bits.TrailingZeros64(uint64(n))
	for i := range p.rev {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	for k := range p.twiddle {
		angle := -2 * math.Pi * float64(k) / float64(n)
		s, c := math.Sincos(angle)
		p.twiddle[k] = complex(float32(c), float32(s))
	}
	actual, _ := plans.LoadOrStore(n, p)
	return actual.(*plan), nil
}

// Transform computes an in-place FFT of x, whose length must be a power of
// two. The inverse transform is normalized by 1/n so that
// Transform(Inverse, Transform(Forward, x)) ≈ x.
func Transform(dir Direction, x []complex64) error {
	p, err := planFor(len(x))
	if err != nil {
		return err
	}
	p.run(dir, x)
	return nil
}

func (p *plan) run(dir Direction, x []complex64) {
	n := p.n
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for span := 1; span < n; span <<= 1 {
		step := n / (2 * span)
		for start := 0; start < n; start += 2 * span {
			for k := 0; k < span; k++ {
				w := p.twiddle[k*step]
				if dir == Inverse {
					w = complex(real(w), -imag(w))
				}
				a := x[start+k]
				b := x[start+k+span] * w
				x[start+k] = a + b
				x[start+k+span] = a - b
			}
		}
	}
	if dir == Inverse {
		inv := complex(float32(1)/float32(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// TransformBatch computes batch independent in-place n-point transforms over
// a contiguous buffer of batch·n complex points, parallelized across CPUs —
// the shape of the paper's "different numbers of parallel FFT operations".
func TransformBatch(dir Direction, x []complex64, n int) error {
	p, err := planFor(n)
	if err != nil {
		return err
	}
	if len(x)%n != 0 {
		return fmt.Errorf("fft: buffer of %d points is not a multiple of transform size %d", len(x), n)
	}
	batch := len(x) / n
	if batch == 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > batch {
		workers = batch
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * batch / workers
		hi := (w + 1) * batch / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				p.run(dir, x[i*n:(i+1)*n])
			}
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// DFT computes the naive O(n²) reference transform of x into a new slice,
// used by tests as an oracle.
func DFT(dir Direction, x []complex64) []complex64 {
	n := len(x)
	out := make([]complex64, n)
	sign := -1.0
	if dir == Inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sumRe, sumIm float64
		for j := 0; j < n; j++ {
			angle := sign * 2 * math.Pi * float64(k*j) / float64(n)
			s, c := math.Sincos(angle)
			re, im := float64(real(x[j])), float64(imag(x[j]))
			sumRe += re*c - im*s
			sumIm += re*s + im*c
		}
		if dir == Inverse {
			sumRe /= float64(n)
			sumIm /= float64(n)
		}
		out[k] = complex(float32(sumRe), float32(sumIm))
	}
	return out
}

// Flops returns the standard 5·n·log2(n) operation count estimate for one
// complex n-point FFT, used by performance reporting.
func Flops(n int) float64 {
	if n <= 1 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}
