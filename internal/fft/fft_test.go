package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSignal(rng *rand.Rand, n int) []complex64 {
	x := make([]complex64, n)
	for i := range x {
		x[i] = complex(rng.Float32()*2-1, rng.Float32()*2-1)
	}
	return x
}

func maxDiff(a, b []complex64) float64 {
	var d float64
	for i := range a {
		if v := cmplx.Abs(complex128(a[i]) - complex128(b[i])); v > d {
			d = v
		}
	}
	return d
}

func TestTransformMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 512} {
		x := randSignal(rng, n)
		want := DFT(Forward, x)
		got := append([]complex64(nil), x...)
		if err := Transform(Forward, got); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if d := maxDiff(got, want); d > 1e-3 {
			t.Fatalf("n=%d: FFT deviates from DFT by %g", n, d)
		}
	}
}

func TestInverseMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randSignal(rng, 64)
	want := DFT(Inverse, x)
	got := append([]complex64(nil), x...)
	if err := Transform(Inverse, got); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(got, want); d > 1e-3 {
		t.Fatalf("inverse FFT deviates from inverse DFT by %g", d)
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randSignal(rng, Points)
	orig := append([]complex64(nil), x...)
	if err := Transform(Forward, x); err != nil {
		t.Fatal(err)
	}
	if err := Transform(Inverse, x); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(x, orig); d > 1e-4 {
		t.Fatalf("forward+inverse deviates from identity by %g", d)
	}
}

func TestImpulseResponse(t *testing.T) {
	// The FFT of a unit impulse is all ones.
	x := make([]complex64, 16)
	x[0] = 1
	if err := Transform(Forward, x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(complex128(v)-1) > 1e-6 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestPureToneBin(t *testing.T) {
	// A complex exponential at frequency k concentrates in bin k.
	const n, k = 64, 5
	x := make([]complex64, n)
	for j := range x {
		angle := 2 * math.Pi * float64(k*j) / n
		s, c := math.Sincos(angle)
		x[j] = complex(float32(c), float32(s))
	}
	if err := Transform(Forward, x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		mag := cmplx.Abs(complex128(v))
		if i == k && math.Abs(mag-n) > 1e-3 {
			t.Fatalf("bin %d magnitude %g, want %d", i, mag, n)
		}
		if i != k && mag > 1e-3 {
			t.Fatalf("bin %d magnitude %g, want 0", i, mag)
		}
	}
}

func TestTransformRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 6, 100} {
		if err := Transform(Forward, make([]complex64, n)); err == nil {
			t.Fatalf("n=%d: want error", n)
		}
	}
	if err := Transform(Forward, nil); err == nil {
		t.Fatal("empty input: want error")
	}
}

func TestTransformBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const batch, n = 37, 64
	x := randSignal(rng, batch*n)
	want := make([]complex64, 0, len(x))
	for i := 0; i < batch; i++ {
		want = append(want, DFT(Forward, x[i*n:(i+1)*n])...)
	}
	if err := TransformBatch(Forward, x, n); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(x, want); d > 1e-3 {
		t.Fatalf("batched FFT deviates from per-transform DFT by %g", d)
	}
}

func TestTransformBatchErrors(t *testing.T) {
	if err := TransformBatch(Forward, make([]complex64, 100), 64); err == nil {
		t.Fatal("ragged batch must error")
	}
	if err := TransformBatch(Forward, make([]complex64, 64), 63); err == nil {
		t.Fatal("non-power-of-two size must error")
	}
	if err := TransformBatch(Forward, nil, 64); err != nil {
		t.Fatalf("empty batch should be a no-op, got %v", err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Parseval: sum |x|² == (1/n) sum |X|².
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randSignal(rng, 128)
		energy := func(xs []complex64) float64 {
			var e float64
			for _, v := range xs {
				re, im := float64(real(v)), float64(imag(v))
				e += re*re + im*im
			}
			return e
		}
		timeE := energy(x)
		if err := Transform(Forward, x); err != nil {
			return false
		}
		freqE := energy(x)
		return math.Abs(timeE-freqE/128) < 1e-2*math.Max(1, timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	// FFT(a·x + y) == a·FFT(x) + FFT(y).
	f := func(seed int64, scaleBits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := complex(float32(scaleBits%7)-3, 0)
		x := randSignal(rng, 64)
		y := randSignal(rng, 64)
		combo := make([]complex64, 64)
		for i := range combo {
			combo[i] = a*x[i] + y[i]
		}
		if Transform(Forward, combo) != nil || Transform(Forward, x) != nil || Transform(Forward, y) != nil {
			return false
		}
		for i := range combo {
			want := a*x[i] + y[i]
			if cmplx.Abs(complex128(combo[i]-want)) > 1e-2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randSignal(rng, Points)
		orig := append([]complex64(nil), x...)
		if Transform(Forward, x) != nil || Transform(Inverse, x) != nil {
			return false
		}
		return maxDiff(x, orig) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFlops(t *testing.T) {
	if got, want := Flops(512), 5.0*512*9; got != want {
		t.Fatalf("Flops(512) = %g, want %g", got, want)
	}
	if Flops(1) != 0 || Flops(0) != 0 {
		t.Fatal("degenerate sizes have zero flops")
	}
}

func TestConstants(t *testing.T) {
	// The paper's arithmetic: one transform moves 8·512 = 4096 bytes, so a
	// batch of n moves 4096·n per direction.
	if BytesPerTransform != 4096 {
		t.Fatalf("BytesPerTransform = %d, want 4096", BytesPerTransform)
	}
}

func BenchmarkTransform512(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := randSignal(rng, Points)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Transform(Forward, x); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(BytesPerTransform)
}

func BenchmarkTransformBatch2048x512(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := randSignal(rng, 2048*Points)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := TransformBatch(Forward, x, Points); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(2048 * BytesPerTransform)
}
