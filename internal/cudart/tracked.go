package cudart

import "sync/atomic"

// TrackedRuntime decorates any Runtime with CUDA's sticky-error protocol:
// every failing call records its cudaError_t, cudaGetLastError returns the
// most recent one and resets the state to cudaSuccess, and
// cudaPeekAtLastError reads it without resetting. It works identically
// over the local runtime and the remote client, since both surface
// cudaError_t values.
type TrackedRuntime struct {
	rt   Runtime
	code atomic.Uint32
}

var _ Runtime = (*TrackedRuntime)(nil)

// Track wraps a runtime with last-error tracking.
func Track(rt Runtime) *TrackedRuntime { return &TrackedRuntime{rt: rt} }

// Unwrap returns the underlying runtime (e.g. to reach AsyncRuntime or
// DeviceRuntime extensions, whose calls are not tracked).
func (w *TrackedRuntime) Unwrap() Runtime { return w.rt }

// record stores a failure and passes the error through.
func (w *TrackedRuntime) record(err error) error {
	if err != nil {
		w.code.Store(uint32(Code(err)))
	}
	return err
}

// GetLastError returns the last recorded error and resets the state to
// cudaSuccess (cudaGetLastError).
func (w *TrackedRuntime) GetLastError() Error {
	return Error(w.code.Swap(uint32(Success)))
}

// PeekAtLastError returns the last recorded error without resetting it
// (cudaPeekAtLastError).
func (w *TrackedRuntime) PeekAtLastError() Error {
	return Error(w.code.Load())
}

// Malloc implements Runtime.
func (w *TrackedRuntime) Malloc(size uint32) (DevicePtr, error) {
	p, err := w.rt.Malloc(size)
	return p, w.record(err)
}

// Free implements Runtime.
func (w *TrackedRuntime) Free(ptr DevicePtr) error {
	return w.record(w.rt.Free(ptr))
}

// MemcpyToDevice implements Runtime.
func (w *TrackedRuntime) MemcpyToDevice(dst DevicePtr, src []byte) error {
	return w.record(w.rt.MemcpyToDevice(dst, src))
}

// MemcpyToHost implements Runtime.
func (w *TrackedRuntime) MemcpyToHost(dst []byte, src DevicePtr) error {
	return w.record(w.rt.MemcpyToHost(dst, src))
}

// Launch implements Runtime.
func (w *TrackedRuntime) Launch(name string, grid, block Dim3, shared uint32, params []byte) error {
	return w.record(w.rt.Launch(name, grid, block, shared, params))
}

// DeviceSynchronize implements Runtime.
func (w *TrackedRuntime) DeviceSynchronize() error {
	return w.record(w.rt.DeviceSynchronize())
}

// Capability implements Runtime.
func (w *TrackedRuntime) Capability() (major, minor uint32) { return w.rt.Capability() }

// Close implements Runtime.
func (w *TrackedRuntime) Close() error { return w.record(w.rt.Close()) }
