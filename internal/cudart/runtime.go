package cudart

import (
	"errors"
	"math"

	"rcuda/internal/gpu"
)

// DevicePtr is a 32-bit device address, as in the CUDA 2.3 / Tesla C1060
// era the paper targets (Table I carries 4-byte device pointers).
type DevicePtr uint32

// Dim3 re-exports the launch geometry type.
type Dim3 = gpu.Dim3

// Runtime is the CUDA Runtime API subset the middleware virtualizes. Both
// the local implementation (this package) and the remote client (package
// rcuda) satisfy it, so an application is oblivious to where the GPU lives.
//
// All operations are synchronous, matching the paper's scope ("only
// applications making use of synchronous data transfers are covered").
type Runtime interface {
	// Malloc allocates size bytes of device memory (cudaMalloc).
	Malloc(size uint32) (DevicePtr, error)
	// Free releases a device allocation (cudaFree).
	Free(ptr DevicePtr) error
	// MemcpyToDevice copies host data to device memory
	// (cudaMemcpy, cudaMemcpyHostToDevice).
	MemcpyToDevice(dst DevicePtr, src []byte) error
	// MemcpyToHost copies len(dst) bytes of device memory into dst
	// (cudaMemcpy, cudaMemcpyDeviceToHost).
	MemcpyToHost(dst []byte, src DevicePtr) error
	// Launch executes a kernel by name with the given geometry, dynamic
	// shared memory size, and packed parameter block (cudaLaunch plus the
	// folded-in cudaConfigureCall/cudaSetupArgument state).
	Launch(name string, grid, block Dim3, shared uint32, params []byte) error
	// DeviceSynchronize blocks until the device is idle
	// (cudaDeviceSynchronize; trivially immediate for synchronous work).
	DeviceSynchronize() error
	// Capability returns the device compute capability.
	Capability() (major, minor uint32)
	// Close finalizes the runtime, releasing the context and, for a
	// remote runtime, the connection and the server-side session.
	Close() error
}

// Local is the Runtime over one or more simulated devices on the same
// node — the "local GPU" configuration the paper compares against, or a
// multi-GPU node when opened with ExtraDevices. Allocations, copies, and
// launches route to the device selected with SetDevice; each device gets
// its own lazily created context, mirroring the server-side session.
type Local struct {
	devs []*gpu.Device
	ctxs map[int]*gpu.Context
	cur  int
	mod  *gpu.Module
	// preinit records whether later-selected devices also skip the CUDA
	// environment initialization delay, matching how the first context was
	// opened.
	preinit bool
}

var _ Runtime = (*Local)(nil)

// LocalOption configures OpenLocal.
type LocalOption func(*localOptions)

type localOptions struct {
	preinitialized bool
	extra          []*gpu.Device
}

// Preinitialized opens the runtime on a context created before timing
// started, skipping the CUDA environment initialization delay — the rCUDA
// daemon's trick, exposed for the ablation benchmark.
func Preinitialized() LocalOption {
	return func(o *localOptions) { o.preinitialized = true }
}

// ExtraDevices attaches additional GPUs beyond the primary one, the local
// counterpart of the server's WithDevices: DeviceCount reports them and
// SetDevice routes subsequent operations to the selected device.
func ExtraDevices(extra ...*gpu.Device) LocalOption {
	return func(o *localOptions) { o.extra = append(o.extra, extra...) }
}

// OpenLocal initializes the CUDA runtime on a device and loads the
// application's GPU module, paying the environment initialization delay
// unless Preinitialized is given. Device 0 is current initially.
func OpenLocal(dev *gpu.Device, module *gpu.Module, opts ...LocalOption) (*Local, error) {
	var o localOptions
	for _, opt := range opts {
		opt(&o)
	}
	var ctx *gpu.Context
	if o.preinitialized {
		ctx = dev.NewContextPreinitialized()
	} else {
		ctx = dev.NewContext()
	}
	if module != nil {
		if err := ctx.LoadModule(module); err != nil {
			_ = ctx.Destroy()
			return nil, err
		}
	}
	return &Local{
		devs:    append([]*gpu.Device{dev}, o.extra...),
		ctxs:    map[int]*gpu.Context{0: ctx},
		mod:     module,
		preinit: o.preinitialized,
	}, nil
}

// dev and ctx resolve the currently selected device and its context.
func (l *Local) dev() *gpu.Device  { return l.devs[l.cur] }
func (l *Local) ctx() *gpu.Context { return l.ctxs[l.cur] }

// Malloc implements Runtime.
func (l *Local) Malloc(size uint32) (DevicePtr, error) {
	ptr, err := l.ctx().Malloc(size)
	if err != nil {
		return 0, mapGPUError(err)
	}
	return DevicePtr(ptr), nil
}

// Free implements Runtime.
func (l *Local) Free(ptr DevicePtr) error {
	return mapGPUError(l.ctx().Free(uint32(ptr)))
}

// MemcpyToDevice implements Runtime.
func (l *Local) MemcpyToDevice(dst DevicePtr, src []byte) error {
	return mapGPUError(l.ctx().CopyToDevice(uint32(dst), src))
}

// MemcpyToHost implements Runtime.
func (l *Local) MemcpyToHost(dst []byte, src DevicePtr) error {
	data, err := l.ctx().CopyToHost(uint32(src), uint32(len(dst)))
	if err != nil {
		return mapGPUError(err)
	}
	copy(dst, data)
	return nil
}

// Launch implements Runtime.
func (l *Local) Launch(name string, grid, block Dim3, shared uint32, params []byte) error {
	return mapGPUError(l.ctx().Launch(name, grid, block, shared, params))
}

// DeviceSynchronize implements Runtime: it waits out every pending
// asynchronous operation of this context.
func (l *Local) DeviceSynchronize() error { return mapGPUError(l.ctx().Synchronize()) }

// Capability implements Runtime.
func (l *Local) Capability() (major, minor uint32) { return l.dev().Capability() }

// Close implements Runtime: it destroys every per-device context that was
// created, returning the first error while still attempting the rest. The
// destroyed contexts stay in place so use-after-close surfaces as
// cudaErrorInitializationError rather than a crash.
func (l *Local) Close() error {
	var first error
	for d := 0; d < len(l.devs); d++ {
		if ctx, ok := l.ctxs[d]; ok {
			if err := ctx.Destroy(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// mapGPUError translates device-layer errors into cudaError_t values
// (nil stays nil), so the Runtime surfaces the same codes the wire carries.
func mapGPUError(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, gpu.ErrOutOfMemory):
		return ErrorMemoryAllocation
	case errors.Is(err, gpu.ErrZeroSize):
		return ErrorInvalidValue
	case errors.Is(err, gpu.ErrInvalidDevPtr):
		return ErrorInvalidDevicePointer
	case errors.Is(err, gpu.ErrUnknownKernel):
		return ErrorLaunchFailure
	case errors.Is(err, gpu.ErrInvalidLaunch):
		return ErrorInvalidConfiguration
	case errors.Is(err, gpu.ErrInvalidStream), errors.Is(err, gpu.ErrInvalidEvent):
		return ErrorInvalidValue
	case errors.Is(err, gpu.ErrContextDestroyed):
		return ErrorInitialization
	case errors.Is(err, gpu.ErrUnknownModule):
		return ErrorInitialization
	default:
		return ErrorUnknown
	}
}

// --- Host-side data helpers -------------------------------------------------

// Float32Bytes serializes a float32 slice to the little-endian layout device
// memory uses. This marshaling copy is part of the middleware overhead the
// paper folds into its fixed time.
func Float32Bytes(xs []float32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		bits := math.Float32bits(x)
		out[4*i] = byte(bits)
		out[4*i+1] = byte(bits >> 8)
		out[4*i+2] = byte(bits >> 16)
		out[4*i+3] = byte(bits >> 24)
	}
	return out
}

// BytesFloat32 deserializes little-endian bytes into float32s. The length
// of b must be a multiple of 4.
func BytesFloat32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	for i := range out {
		bits := uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24
		out[i] = math.Float32frombits(bits)
	}
	return out
}

// Complex64Bytes serializes complex values as interleaved little-endian
// real/imaginary float32 pairs, the device layout of the FFT case study.
func Complex64Bytes(xs []complex64) []byte {
	fs := make([]float32, 2*len(xs))
	for i, v := range xs {
		fs[2*i], fs[2*i+1] = real(v), imag(v)
	}
	return Float32Bytes(fs)
}

// BytesComplex64 deserializes interleaved float32 pairs into complex
// values. The length of b must be a multiple of 8.
func BytesComplex64(b []byte) []complex64 {
	fs := BytesFloat32(b)
	out := make([]complex64, len(fs)/2)
	for i := range out {
		out[i] = complex(fs[2*i], fs[2*i+1])
	}
	return out
}
