package cudart

import (
	"errors"
	"testing"

	"rcuda/internal/gpu"
	"rcuda/internal/vclock"
)

func trackedTestRuntime(t *testing.T) *TrackedRuntime {
	t.Helper()
	dev := gpu.New(gpu.Config{Clock: vclock.NewSim()})
	rt, err := OpenLocal(dev, nil, Preinitialized())
	if err != nil {
		t.Fatal(err)
	}
	w := Track(rt)
	t.Cleanup(func() { _ = w.Close() })
	return w
}

func TestTrackedStartsClean(t *testing.T) {
	w := trackedTestRuntime(t)
	if w.PeekAtLastError() != Success {
		t.Fatal("fresh runtime must report cudaSuccess")
	}
	if w.GetLastError() != Success {
		t.Fatal("GetLastError on a clean runtime must be cudaSuccess")
	}
}

func TestTrackedRecordsAndResets(t *testing.T) {
	w := trackedTestRuntime(t)
	if _, err := w.Malloc(0); !errors.Is(err, ErrorInvalidValue) {
		t.Fatalf("Malloc(0) = %v", err)
	}
	if w.PeekAtLastError() != ErrorInvalidValue {
		t.Fatalf("peek = %v, want cudaErrorInvalidValue", w.PeekAtLastError())
	}
	// Peek does not reset.
	if w.PeekAtLastError() != ErrorInvalidValue {
		t.Fatal("peek must not reset the state")
	}
	// Get returns and resets.
	if w.GetLastError() != ErrorInvalidValue {
		t.Fatal("get must return the recorded error")
	}
	if w.GetLastError() != Success {
		t.Fatal("get must reset to cudaSuccess")
	}
}

func TestTrackedSuccessDoesNotClear(t *testing.T) {
	w := trackedTestRuntime(t)
	if err := w.Free(DevicePtr(0xbad)); err == nil {
		t.Fatal("bad free must fail")
	}
	// A subsequent successful call leaves the sticky error in place.
	ptr, err := w.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Free(ptr); err != nil {
		t.Fatal(err)
	}
	if w.GetLastError() != ErrorInvalidDevicePointer {
		t.Fatal("successful calls must not clear the sticky error")
	}
}

func TestTrackedLatestErrorWins(t *testing.T) {
	w := trackedTestRuntime(t)
	_, _ = w.Malloc(0)                           // cudaErrorInvalidValue
	_ = w.Launch("nope", Dim3{}, Dim3{}, 0, nil) // cudaErrorLaunchFailure
	if got := w.GetLastError(); got != ErrorLaunchFailure {
		t.Fatalf("last error = %v, want the most recent (cudaErrorLaunchFailure)", got)
	}
}

func TestTrackedPassThrough(t *testing.T) {
	w := trackedTestRuntime(t)
	maj, min := w.Capability()
	if maj != 1 || min != 3 {
		t.Fatal("capability must pass through")
	}
	if w.Unwrap() == nil {
		t.Fatal("Unwrap must expose the inner runtime")
	}
	// Full data path through the wrapper.
	ptr, err := w.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.MemcpyToDevice(ptr, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 16)
	if err := w.MemcpyToHost(out, ptr); err != nil {
		t.Fatal(err)
	}
	if err := w.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	if err := w.Free(ptr); err != nil {
		t.Fatal(err)
	}
	if w.PeekAtLastError() != Success {
		t.Fatal("clean session must stay cudaSuccess")
	}
}

func TestLaunchConfigurationValidation(t *testing.T) {
	w := trackedTestRuntime(t)
	// 1024 threads per block exceeds the C1060's 512 limit.
	err := w.Launch("any", Dim3{X: 1}, Dim3{X: 32, Y: 32}, 0, nil)
	if !errors.Is(err, ErrorInvalidConfiguration) {
		t.Fatalf("oversized block = %v, want cudaErrorInvalidConfiguration", err)
	}
	// Grid Z > 1 is not supported on CC 1.3.
	err = w.Launch("any", Dim3{X: 1, Z: 2}, Dim3{X: 1}, 0, nil)
	if !errors.Is(err, ErrorInvalidConfiguration) {
		t.Fatalf("3-D grid = %v, want cudaErrorInvalidConfiguration", err)
	}
	// Block Z beyond 64.
	err = w.Launch("any", Dim3{X: 1}, Dim3{X: 1, Z: 65}, 0, nil)
	if !errors.Is(err, ErrorInvalidConfiguration) {
		t.Fatalf("deep block = %v, want cudaErrorInvalidConfiguration", err)
	}
	// Oversized grid.
	err = w.Launch("any", Dim3{X: 70000}, Dim3{X: 1}, 0, nil)
	if !errors.Is(err, ErrorInvalidConfiguration) {
		t.Fatalf("oversized grid = %v, want cudaErrorInvalidConfiguration", err)
	}
	if w.GetLastError() != ErrorInvalidConfiguration {
		t.Fatal("configuration errors must be sticky")
	}
}
