package cudart

import (
	"bytes"
	"errors"
	"testing"

	"rcuda/internal/gpu"
	"rcuda/internal/vclock"
)

func openDeviceTest(t *testing.T) *Local {
	t.Helper()
	dev := gpu.New(gpu.Config{Clock: vclock.NewSim()})
	rt, err := OpenLocal(dev, nil, Preinitialized())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt
}

func TestLocalDeviceRuntime(t *testing.T) {
	var _ DeviceRuntime = openDeviceTest(t)
}

func TestLocalDeviceCountAndSetDevice(t *testing.T) {
	rt := openDeviceTest(t)
	n, err := rt.DeviceCount()
	if err != nil || n != 1 {
		t.Fatalf("DeviceCount = %d, %v", n, err)
	}
	if err := rt.SetDevice(0); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetDevice(1); !errors.Is(err, ErrorInvalidValue) {
		t.Fatalf("SetDevice(1) = %v, want cudaErrorInvalidValue", err)
	}
}

func TestLocalDeviceProperties(t *testing.T) {
	rt := openDeviceTest(t)
	p, err := rt.DeviceProperties()
	if err != nil {
		t.Fatal(err)
	}
	if p.CapabilityMajor != 1 || p.CapabilityMinor != 3 || p.Name == "" {
		t.Fatalf("properties %+v", p)
	}
}

func TestLocalMemsetAndD2D(t *testing.T) {
	rt := openDeviceTest(t)
	const n = 128
	src, _ := rt.Malloc(n)
	dst, _ := rt.Malloc(n)
	if err := rt.Memset(src, 0x7F, n); err != nil {
		t.Fatal(err)
	}
	if err := rt.MemcpyDeviceToDevice(dst, src, n); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, n)
	if err := rt.MemcpyToHost(out, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, bytes.Repeat([]byte{0x7F}, n)) {
		t.Fatal("memset + D2D produced wrong data")
	}
	if err := rt.Memset(0, 1, 1); !errors.Is(err, ErrorInvalidDevicePointer) {
		t.Fatalf("null memset = %v", err)
	}
	if err := rt.MemcpyDeviceToDevice(dst, src, n+1); !errors.Is(err, ErrorInvalidDevicePointer) {
		t.Fatalf("overrun D2D = %v", err)
	}
}
