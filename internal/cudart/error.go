// Package cudart defines the CUDA Runtime API surface that rCUDA
// virtualizes, together with a local implementation backed by the simulated
// GPU. The remote implementation (package rcuda) satisfies the same Runtime
// interface, which is the paper's core idea: "the client ... provides the
// illusion of being a real GPU to applications requesting GPU services".
//
// The API follows the CUDA 2.3 runtime the paper's server daemon is built
// on: 32-bit device pointers, synchronous memcpy and launch-by-name
// semantics, and numeric cudaError_t result codes (carried on the wire as
// the 32-bit "CUDA error" field of every response in Table I).
package cudart

import "fmt"

// Error is a cudaError_t result code. The zero value is cudaSuccess; Error
// implements the error interface, and helpers convert between codes and Go
// errors so that Success maps to a nil error.
type Error uint32

// Result codes, numerically matching the CUDA 2.3 runtime for the subset
// the middleware can produce.
const (
	Success                   Error = 0
	ErrorMissingConfiguration Error = 1
	ErrorMemoryAllocation     Error = 2
	ErrorInitialization       Error = 3
	ErrorLaunchFailure        Error = 4
	ErrorInvalidConfiguration Error = 9
	ErrorInvalidValue         Error = 11
	ErrorInvalidDevicePointer Error = 17
	ErrorUnknown              Error = 30
	ErrorNotReady             Error = 34
)

// String returns the runtime's error name.
func (e Error) String() string {
	switch e {
	case Success:
		return "cudaSuccess"
	case ErrorMissingConfiguration:
		return "cudaErrorMissingConfiguration"
	case ErrorMemoryAllocation:
		return "cudaErrorMemoryAllocation"
	case ErrorInitialization:
		return "cudaErrorInitializationError"
	case ErrorLaunchFailure:
		return "cudaErrorLaunchFailure"
	case ErrorInvalidConfiguration:
		return "cudaErrorInvalidConfiguration"
	case ErrorInvalidValue:
		return "cudaErrorInvalidValue"
	case ErrorInvalidDevicePointer:
		return "cudaErrorInvalidDevicePointer"
	case ErrorNotReady:
		return "cudaErrorNotReady"
	case ErrorUnknown:
		return "cudaErrorUnknown"
	default:
		return fmt.Sprintf("cudaError(%d)", uint32(e))
	}
}

// Error implements the error interface. Calling it on Success indicates a
// programming error upstream; it still formats usefully.
func (e Error) Error() string { return e.String() }

// AsError converts a result code to a Go error, mapping Success to nil.
func (e Error) AsError() error {
	if e == Success {
		return nil
	}
	return e
}

// Code extracts the wire code for an error produced by this package:
// nil maps to Success, an Error maps to itself, and any other error maps to
// ErrorUnknown (the server must never leak Go error strings into the
// 32-bit result field).
func Code(err error) Error {
	if err == nil {
		return Success
	}
	if e, ok := err.(Error); ok {
		return e
	}
	return ErrorUnknown
}
