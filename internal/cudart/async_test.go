package cudart

import (
	"errors"
	"testing"
	"time"

	"rcuda/internal/gpu"
	"rcuda/internal/vclock"
)

// pipelineModule provides a kernel with a 10 ms modeled cost that doubles
// float32 data, for overlap tests.
func pipelineModule(name string) *gpu.Module {
	return &gpu.Module{
		Name:       name,
		BinarySize: 128,
		Kernels: []*gpu.Kernel{{
			Name: name + "_double",
			Run: func(ec *gpu.ExecContext) error {
				ptr, err := ec.Params.U32()
				if err != nil {
					return err
				}
				n, err := ec.Params.U32()
				if err != nil {
					return err
				}
				mem, err := ec.Mem(ptr, n*4)
				if err != nil {
					return err
				}
				xs := BytesFloat32(mem)
				for i := range xs {
					xs[i] *= 2
				}
				copy(mem, Float32Bytes(xs))
				return nil
			},
			Cost: func(*gpu.ExecContext) time.Duration { return 10 * time.Millisecond },
		}},
	}
}

func openAsync(t *testing.T, name string) (*Local, *vclock.Sim) {
	t.Helper()
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	rt, err := OpenLocal(dev, pipelineModule(name), Preinitialized())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt, clk
}

func TestAsyncRuntimeInterface(t *testing.T) {
	var rt AsyncRuntime = &Local{}
	_ = rt // compile-time assertion that Local satisfies AsyncRuntime
}

func TestLocalStreamPipeline(t *testing.T) {
	rt, clk := openAsync(t, "pipeline")
	in := []float32{1, 2, 3, 4}
	buf, err := rt.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	s, err := rt.StreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	before := clk.Now()
	if err := rt.MemcpyToDeviceAsync(buf, Float32Bytes(in), s); err != nil {
		t.Fatal(err)
	}
	if err := rt.LaunchAsync("pipeline_double", Dim3{X: 1}, Dim3{X: 4}, 0,
		gpu.PackParams(uint32(buf), 4), s); err != nil {
		t.Fatal(err)
	}
	// Nothing synchronized yet: clock unchanged.
	if clk.Now() != before {
		t.Fatal("async pipeline must not advance the clock before synchronization")
	}
	out := make([]byte, 16)
	if err := rt.MemcpyToHostAsync(out, buf, s); err != nil {
		t.Fatal(err)
	}
	if err := rt.StreamSynchronize(s); err != nil {
		t.Fatal(err)
	}
	if clk.Now() <= before+10*time.Millisecond {
		t.Fatal("stream synchronize must account for the kernel cost")
	}
	for i, v := range BytesFloat32(out) {
		if v != in[i]*2 {
			t.Fatalf("element %d = %g, want %g", i, v, in[i]*2)
		}
	}
	if err := rt.StreamDestroy(s); err != nil {
		t.Fatal(err)
	}
}

func TestLocalEventsTimeKernel(t *testing.T) {
	rt, _ := openAsync(t, "events")
	buf, _ := rt.Malloc(16)
	_ = rt.MemcpyToDevice(buf, make([]byte, 16))
	s, _ := rt.StreamCreate()
	start, err := rt.EventCreate()
	if err != nil {
		t.Fatal(err)
	}
	end, err := rt.EventCreate()
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.EventRecord(start, s); err != nil {
		t.Fatal(err)
	}
	if err := rt.LaunchAsync("events_double", Dim3{X: 1}, Dim3{X: 4}, 0,
		gpu.PackParams(uint32(buf), 4), s); err != nil {
		t.Fatal(err)
	}
	if err := rt.EventRecord(end, s); err != nil {
		t.Fatal(err)
	}
	if err := rt.EventSynchronize(end); err != nil {
		t.Fatal(err)
	}
	elapsed, err := rt.EventElapsed(start, end)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != 10*time.Millisecond {
		t.Fatalf("event elapsed %v, want 10ms", elapsed)
	}
	if err := rt.EventDestroy(start); err != nil {
		t.Fatal(err)
	}
	if err := rt.EventDestroy(end); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncErrorMapping(t *testing.T) {
	rt, _ := openAsync(t, "errors")
	if err := rt.StreamSynchronize(42); !errors.Is(err, ErrorInvalidValue) {
		t.Fatalf("bad stream sync = %v, want cudaErrorInvalidValue", err)
	}
	if err := rt.EventRecord(42, 0); !errors.Is(err, ErrorInvalidValue) {
		t.Fatalf("bad event record = %v, want cudaErrorInvalidValue", err)
	}
	if err := rt.MemcpyToDeviceAsync(0, []byte{1}, 0); !errors.Is(err, ErrorInvalidDevicePointer) {
		t.Fatalf("async null memcpy = %v, want cudaErrorInvalidDevicePointer", err)
	}
	if _, err := rt.EventElapsed(1, 2); !errors.Is(err, ErrorInvalidValue) {
		t.Fatalf("elapsed on unknown events = %v, want cudaErrorInvalidValue", err)
	}
}

func TestDeviceSynchronizeDrainsStreams(t *testing.T) {
	rt, clk := openAsync(t, "drain")
	buf, _ := rt.Malloc(16)
	_ = rt.MemcpyToDevice(buf, make([]byte, 16))
	s, _ := rt.StreamCreate()
	before := clk.Now()
	if err := rt.LaunchAsync("drain_double", Dim3{X: 1}, Dim3{X: 4}, 0,
		gpu.PackParams(uint32(buf), 4), s); err != nil {
		t.Fatal(err)
	}
	if err := rt.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	if clk.Now()-before != 10*time.Millisecond {
		t.Fatalf("DeviceSynchronize advanced %v, want 10ms", clk.Now()-before)
	}
}
