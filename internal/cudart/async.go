package cudart

import "time"

// Stream is a CUDA stream handle; the zero value is the default
// (synchronizing) stream.
type Stream uint32

// Event is a CUDA event handle.
type Event uint32

// AsyncRuntime extends Runtime with streams, asynchronous copies, and
// events — the surface the paper defers to future work, implemented both by
// the local runtime and the remote client. Asynchrony is device-side: a
// copy queued on a non-default stream may overlap a kernel on another
// stream (the Tesla C1060 has one copy engine and one compute engine), and
// completion is observed through stream/event synchronization.
type AsyncRuntime interface {
	Runtime
	// StreamCreate allocates a stream (cudaStreamCreate).
	StreamCreate() (Stream, error)
	// StreamSynchronize blocks until the stream drains
	// (cudaStreamSynchronize).
	StreamSynchronize(Stream) error
	// StreamQuery reports completion without blocking: nil when the
	// stream has drained, ErrorNotReady while work is pending
	// (cudaStreamQuery).
	StreamQuery(Stream) error
	// EventQuery reports an event's completion without blocking, with
	// the same protocol (cudaEventQuery).
	EventQuery(Event) error
	// StreamDestroy synchronizes and releases a stream
	// (cudaStreamDestroy).
	StreamDestroy(Stream) error
	// MemcpyToDeviceAsync queues a host-to-device copy on a stream
	// (cudaMemcpyAsync).
	MemcpyToDeviceAsync(dst DevicePtr, src []byte, s Stream) error
	// MemcpyToHostAsync queues a device-to-host copy on a stream; dst is
	// only guaranteed meaningful after the stream synchronizes.
	MemcpyToHostAsync(dst []byte, src DevicePtr, s Stream) error
	// LaunchAsync queues a kernel on a stream.
	LaunchAsync(name string, grid, block Dim3, shared uint32, params []byte, s Stream) error
	// EventCreate allocates an event (cudaEventCreate).
	EventCreate() (Event, error)
	// EventRecord snapshots a stream's progress (cudaEventRecord).
	EventRecord(Event, Stream) error
	// EventSynchronize blocks until the event's work completes
	// (cudaEventSynchronize).
	EventSynchronize(Event) error
	// EventElapsed returns the device time between two recorded events
	// (cudaEventElapsedTime).
	EventElapsed(start, end Event) (time.Duration, error)
	// EventDestroy releases an event (cudaEventDestroy).
	EventDestroy(Event) error
}

var _ AsyncRuntime = (*Local)(nil)

// StreamCreate implements AsyncRuntime.
func (l *Local) StreamCreate() (Stream, error) {
	s, err := l.ctx().StreamCreate()
	return Stream(s), mapGPUError(err)
}

// StreamSynchronize implements AsyncRuntime.
func (l *Local) StreamSynchronize(s Stream) error {
	return mapGPUError(l.ctx().StreamSynchronize(uint32(s)))
}

// StreamDestroy implements AsyncRuntime.
func (l *Local) StreamDestroy(s Stream) error {
	return mapGPUError(l.ctx().StreamDestroy(uint32(s)))
}

// StreamQuery implements AsyncRuntime.
func (l *Local) StreamQuery(s Stream) error {
	ready, err := l.ctx().StreamReady(uint32(s))
	if err != nil {
		return mapGPUError(err)
	}
	if !ready {
		return ErrorNotReady
	}
	return nil
}

// EventQuery implements AsyncRuntime.
func (l *Local) EventQuery(e Event) error {
	ready, err := l.ctx().EventReady(uint32(e))
	if err != nil {
		return mapGPUError(err)
	}
	if !ready {
		return ErrorNotReady
	}
	return nil
}

// MemcpyToDeviceAsync implements AsyncRuntime.
func (l *Local) MemcpyToDeviceAsync(dst DevicePtr, src []byte, s Stream) error {
	return mapGPUError(l.ctx().CopyToDeviceAsync(uint32(dst), src, uint32(s)))
}

// MemcpyToHostAsync implements AsyncRuntime.
func (l *Local) MemcpyToHostAsync(dst []byte, src DevicePtr, s Stream) error {
	data, err := l.ctx().CopyToHostAsync(uint32(src), uint32(len(dst)), uint32(s))
	if err != nil {
		return mapGPUError(err)
	}
	copy(dst, data)
	return nil
}

// LaunchAsync implements AsyncRuntime.
func (l *Local) LaunchAsync(name string, grid, block Dim3, shared uint32, params []byte, s Stream) error {
	return mapGPUError(l.ctx().LaunchAsync(name, grid, block, shared, params, uint32(s)))
}

// EventCreate implements AsyncRuntime.
func (l *Local) EventCreate() (Event, error) {
	e, err := l.ctx().EventCreate()
	return Event(e), mapGPUError(err)
}

// EventRecord implements AsyncRuntime.
func (l *Local) EventRecord(e Event, s Stream) error {
	return mapGPUError(l.ctx().EventRecord(uint32(e), uint32(s)))
}

// EventSynchronize implements AsyncRuntime.
func (l *Local) EventSynchronize(e Event) error {
	return mapGPUError(l.ctx().EventSynchronize(uint32(e)))
}

// EventElapsed implements AsyncRuntime.
func (l *Local) EventElapsed(start, end Event) (time.Duration, error) {
	d, err := l.ctx().EventElapsed(uint32(start), uint32(end))
	return d, mapGPUError(err)
}

// EventDestroy implements AsyncRuntime.
func (l *Local) EventDestroy(e Event) error {
	return mapGPUError(l.ctx().EventDestroy(uint32(e)))
}
