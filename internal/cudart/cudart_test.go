package cudart

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"rcuda/internal/gpu"
	"rcuda/internal/vclock"
)

func testModule(t *testing.T, name string) *gpu.Module {
	t.Helper()
	return &gpu.Module{
		Name:       name,
		BinarySize: 128,
		Kernels: []*gpu.Kernel{{
			Name: name + "_scale2",
			Run: func(ec *gpu.ExecContext) error {
				ptr, err := ec.Params.U32()
				if err != nil {
					return err
				}
				n, err := ec.Params.U32()
				if err != nil {
					return err
				}
				mem, err := ec.Mem(ptr, n*4)
				if err != nil {
					return err
				}
				xs := BytesFloat32(mem)
				for i := range xs {
					xs[i] *= 2
				}
				copy(mem, Float32Bytes(xs))
				return nil
			},
			Cost: func(ec *gpu.ExecContext) time.Duration { return time.Millisecond },
		}},
	}
}

func openTest(t *testing.T, name string, opts ...LocalOption) (*Local, *vclock.Sim) {
	t.Helper()
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	rt, err := OpenLocal(dev, testModule(t, name), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return rt, clk
}

func TestLocalLifecycle(t *testing.T) {
	rt, _ := openTest(t, "lifecycle")
	defer rt.Close()

	in := []float32{1, 2, 3, 4.5}
	buf, err := rt.Malloc(uint32(4 * len(in)))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.MemcpyToDevice(buf, Float32Bytes(in)); err != nil {
		t.Fatal(err)
	}
	if err := rt.Launch("lifecycle_scale2", Dim3{X: 1}, Dim3{X: 4}, 0,
		gpu.PackParams(uint32(buf), uint32(len(in)))); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4*len(in))
	if err := rt.MemcpyToHost(out, buf); err != nil {
		t.Fatal(err)
	}
	for i, v := range BytesFloat32(out) {
		if v != in[i]*2 {
			t.Fatalf("element %d = %g, want %g", i, v, in[i]*2)
		}
	}
	if err := rt.DeviceSynchronize(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Free(buf); err != nil {
		t.Fatal(err)
	}
}

func TestOpenLocalPaysInit(t *testing.T) {
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	rt, err := OpenLocal(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if clk.Now() != gpu.DefaultInitTime {
		t.Fatalf("cold open cost %v, want %v", clk.Now(), gpu.DefaultInitTime)
	}
}

func TestOpenLocalPreinitialized(t *testing.T) {
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk})
	rt, err := OpenLocal(dev, nil, Preinitialized())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if clk.Now() != 0 {
		t.Fatalf("preinitialized open cost %v, want 0", clk.Now())
	}
}

func TestErrorCodesSurface(t *testing.T) {
	rt, _ := openTest(t, "errorcodes")
	defer rt.Close()

	if _, err := rt.Malloc(0); !errors.Is(err, ErrorInvalidValue) {
		t.Fatalf("Malloc(0) = %v, want cudaErrorInvalidValue", err)
	}
	if err := rt.Free(DevicePtr(12345)); !errors.Is(err, ErrorInvalidDevicePointer) {
		t.Fatalf("bad Free = %v, want cudaErrorInvalidDevicePointer", err)
	}
	if err := rt.MemcpyToDevice(0, []byte{1}); !errors.Is(err, ErrorInvalidDevicePointer) {
		t.Fatalf("null memcpy = %v, want cudaErrorInvalidDevicePointer", err)
	}
	if err := rt.Launch("missing", Dim3{}, Dim3{}, 0, nil); !errors.Is(err, ErrorLaunchFailure) {
		t.Fatalf("unknown kernel = %v, want cudaErrorLaunchFailure", err)
	}
}

func TestOutOfMemorySurfaces(t *testing.T) {
	clk := vclock.NewSim()
	dev := gpu.New(gpu.Config{Clock: clk, MemoryBytes: 1 << 16})
	rt, err := OpenLocal(dev, nil, Preinitialized())
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if _, err := rt.Malloc(1 << 20); !errors.Is(err, ErrorMemoryAllocation) {
		t.Fatalf("oversized Malloc = %v, want cudaErrorMemoryAllocation", err)
	}
}

func TestUseAfterClose(t *testing.T) {
	rt, _ := openTest(t, "useafterclose")
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Malloc(64); !errors.Is(err, ErrorInitialization) {
		t.Fatalf("Malloc after Close = %v, want cudaErrorInitializationError", err)
	}
}

func TestCapability(t *testing.T) {
	rt, _ := openTest(t, "capability")
	defer rt.Close()
	maj, min := rt.Capability()
	if maj != 1 || min != 3 {
		t.Fatalf("capability %d.%d, want 1.3", maj, min)
	}
}

func TestErrorStringsAndCodes(t *testing.T) {
	if Success.String() != "cudaSuccess" {
		t.Fatal("Success name")
	}
	if ErrorMemoryAllocation.Error() != "cudaErrorMemoryAllocation" {
		t.Fatal("OOM name")
	}
	if Error(250).String() != "cudaError(250)" {
		t.Fatal("unknown code formatting")
	}
	if Success.AsError() != nil {
		t.Fatal("Success.AsError must be nil")
	}
	if ErrorInvalidValue.AsError() == nil {
		t.Fatal("failure codes must be non-nil errors")
	}
	if Code(nil) != Success {
		t.Fatal("Code(nil)")
	}
	if Code(ErrorLaunchFailure) != ErrorLaunchFailure {
		t.Fatal("Code(Error) identity")
	}
	if Code(errors.New("boom")) != ErrorUnknown {
		t.Fatal("foreign errors must map to cudaErrorUnknown")
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	in := []float32{0, 1, -1, 3.14159, float32(math.Inf(1)), float32(math.SmallestNonzeroFloat32)}
	out := BytesFloat32(Float32Bytes(in))
	if len(out) != len(in) {
		t.Fatalf("length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if math.Float32bits(out[i]) != math.Float32bits(in[i]) {
			t.Fatalf("element %d: %g != %g", i, out[i], in[i])
		}
	}
}

func TestFloat32RoundTripProperty(t *testing.T) {
	f := func(xs []float32) bool {
		got := BytesFloat32(Float32Bytes(xs))
		if len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if math.Float32bits(got[i]) != math.Float32bits(xs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: memcpy round trips through the Runtime preserve arbitrary
// payloads.
func TestRuntimeMemcpyProperty(t *testing.T) {
	rt, _ := openTest(t, "memcpyprop")
	defer rt.Close()
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		ptr, err := rt.Malloc(uint32(len(data)))
		if err != nil {
			return false
		}
		defer func() { _ = rt.Free(ptr) }()
		if rt.MemcpyToDevice(ptr, data) != nil {
			return false
		}
		out := make([]byte, len(data))
		if rt.MemcpyToHost(out, ptr) != nil {
			return false
		}
		for i := range data {
			if out[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestErrorStringTable(t *testing.T) {
	want := map[Error]string{
		Success:                   "cudaSuccess",
		ErrorMissingConfiguration: "cudaErrorMissingConfiguration",
		ErrorMemoryAllocation:     "cudaErrorMemoryAllocation",
		ErrorInitialization:       "cudaErrorInitializationError",
		ErrorLaunchFailure:        "cudaErrorLaunchFailure",
		ErrorInvalidConfiguration: "cudaErrorInvalidConfiguration",
		ErrorInvalidValue:         "cudaErrorInvalidValue",
		ErrorInvalidDevicePointer: "cudaErrorInvalidDevicePointer",
		ErrorNotReady:             "cudaErrorNotReady",
		ErrorUnknown:              "cudaErrorUnknown",
	}
	for code, name := range want {
		if got := code.String(); got != name {
			t.Fatalf("Error(%d).String() = %q, want %q", uint32(code), got, name)
		}
	}
}

func TestComplex64BytesRoundTrip(t *testing.T) {
	in := []complex64{0, 1i, complex(3.5, -2.25), complex(float32(math.Inf(1)), 0)}
	got := BytesComplex64(Complex64Bytes(in))
	if len(got) != len(in) {
		t.Fatalf("length %d, want %d", len(got), len(in))
	}
	for i := range in {
		if math.Float32bits(real(got[i])) != math.Float32bits(real(in[i])) ||
			math.Float32bits(imag(got[i])) != math.Float32bits(imag(in[i])) {
			t.Fatalf("element %d: %v != %v", i, got[i], in[i])
		}
	}
}

func TestComplex64BytesProperty(t *testing.T) {
	f := func(pairs []float32) bool {
		if len(pairs)%2 == 1 {
			pairs = pairs[:len(pairs)-1]
		}
		in := make([]complex64, len(pairs)/2)
		for i := range in {
			in[i] = complex(pairs[2*i], pairs[2*i+1])
		}
		got := BytesComplex64(Complex64Bytes(in))
		if len(got) != len(in) {
			return false
		}
		for i := range in {
			if math.Float32bits(real(got[i])) != math.Float32bits(real(in[i])) ||
				math.Float32bits(imag(got[i])) != math.Float32bits(imag(in[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
