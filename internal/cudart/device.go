package cudart

import "rcuda/internal/gpu"

// DeviceRuntime extends Runtime with device management and device-side
// memory operations: discovering and selecting among a server's GPUs
// (Figure 1 of the paper shows server nodes owning several accelerators),
// querying device properties, and the memory operations that never cross
// the interconnect — cudaMemset and device-to-device cudaMemcpy.
type DeviceRuntime interface {
	Runtime
	// DeviceCount reports how many GPUs the runtime can reach
	// (cudaGetDeviceCount).
	DeviceCount() (int, error)
	// SetDevice selects the current device for subsequent operations
	// (cudaSetDevice). Allocations and kernels are per-device.
	SetDevice(device int) error
	// DeviceProperties describes the current device
	// (cudaGetDeviceProperties).
	DeviceProperties() (gpu.Properties, error)
	// Memset fills device memory with a byte value (cudaMemset).
	Memset(ptr DevicePtr, value byte, size uint32) error
	// MemcpyDeviceToDevice copies within device memory without touching
	// the host or the network (cudaMemcpy, cudaMemcpyDeviceToDevice).
	MemcpyDeviceToDevice(dst, src DevicePtr, size uint32) error
}

var _ DeviceRuntime = (*Local)(nil)

// DeviceCount implements DeviceRuntime; a local runtime owns one device.
func (l *Local) DeviceCount() (int, error) { return 1, nil }

// SetDevice implements DeviceRuntime; only device 0 exists locally.
func (l *Local) SetDevice(device int) error {
	if device != 0 {
		return ErrorInvalidValue
	}
	return nil
}

// DeviceProperties implements DeviceRuntime.
func (l *Local) DeviceProperties() (gpu.Properties, error) {
	return l.dev.Properties(), nil
}

// Memset implements DeviceRuntime.
func (l *Local) Memset(ptr DevicePtr, value byte, size uint32) error {
	return mapGPUError(l.ctx.Memset(uint32(ptr), value, size))
}

// MemcpyDeviceToDevice implements DeviceRuntime.
func (l *Local) MemcpyDeviceToDevice(dst, src DevicePtr, size uint32) error {
	return mapGPUError(l.ctx.CopyDeviceToDevice(uint32(dst), uint32(src), size))
}
