package cudart

import "rcuda/internal/gpu"

// DeviceRuntime extends Runtime with device management and device-side
// memory operations: discovering and selecting among a server's GPUs
// (Figure 1 of the paper shows server nodes owning several accelerators),
// querying device properties, and the memory operations that never cross
// the interconnect — cudaMemset and device-to-device cudaMemcpy.
type DeviceRuntime interface {
	Runtime
	// DeviceCount reports how many GPUs the runtime can reach
	// (cudaGetDeviceCount).
	DeviceCount() (int, error)
	// SetDevice selects the current device for subsequent operations
	// (cudaSetDevice). Allocations and kernels are per-device.
	SetDevice(device int) error
	// DeviceProperties describes the current device
	// (cudaGetDeviceProperties).
	DeviceProperties() (gpu.Properties, error)
	// Memset fills device memory with a byte value (cudaMemset).
	Memset(ptr DevicePtr, value byte, size uint32) error
	// MemcpyDeviceToDevice copies within device memory without touching
	// the host or the network (cudaMemcpy, cudaMemcpyDeviceToDevice).
	MemcpyDeviceToDevice(dst, src DevicePtr, size uint32) error
}

var _ DeviceRuntime = (*Local)(nil)

// DeviceCount implements DeviceRuntime.
func (l *Local) DeviceCount() (int, error) { return len(l.devs), nil }

// SetDevice implements DeviceRuntime: it selects the device subsequent
// operations route to. The first selection of a device creates its context
// — paying the environment initialization delay unless the runtime was
// opened Preinitialized — and loads the application module into it, so
// handles from one device are invalid on another, as in CUDA.
func (l *Local) SetDevice(device int) error {
	if device < 0 || device >= len(l.devs) {
		return ErrorInvalidValue
	}
	if _, ok := l.ctxs[device]; !ok {
		var ctx *gpu.Context
		if l.preinit {
			ctx = l.devs[device].NewContextPreinitialized()
		} else {
			ctx = l.devs[device].NewContext()
		}
		if l.mod != nil {
			if err := ctx.LoadModule(l.mod); err != nil {
				_ = ctx.Destroy()
				return mapGPUError(err)
			}
		}
		l.ctxs[device] = ctx
	}
	l.cur = device
	return nil
}

// DeviceProperties implements DeviceRuntime.
func (l *Local) DeviceProperties() (gpu.Properties, error) {
	return l.dev().Properties(), nil
}

// Memset implements DeviceRuntime.
func (l *Local) Memset(ptr DevicePtr, value byte, size uint32) error {
	return mapGPUError(l.ctx().Memset(uint32(ptr), value, size))
}

// MemcpyDeviceToDevice implements DeviceRuntime.
func (l *Local) MemcpyDeviceToDevice(dst, src DevicePtr, size uint32) error {
	return mapGPUError(l.ctx().CopyDeviceToDevice(uint32(dst), uint32(src), size))
}
