package cudart

import (
	"bytes"
	"errors"
	"testing"

	"rcuda/internal/gpu"
	"rcuda/internal/vclock"
)

// openMultiTest opens a Local over ndev simulated devices sharing one Sim
// clock, with the usual test module loaded.
func openMultiTest(t *testing.T, ndev int, opts ...LocalOption) (*Local, *vclock.Sim) {
	t.Helper()
	clk := vclock.NewSim()
	devs := make([]*gpu.Device, ndev)
	for i := range devs {
		devs[i] = gpu.New(gpu.Config{Clock: clk})
	}
	rt, err := OpenLocal(devs[0], testModule(t, "multi"),
		append([]LocalOption{ExtraDevices(devs[1:]...)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = rt.Close() })
	return rt, clk
}

func TestLocalMultiDeviceCount(t *testing.T) {
	rt, _ := openMultiTest(t, 3)
	n, err := rt.DeviceCount()
	if err != nil || n != 3 {
		t.Fatalf("DeviceCount = %d, %v, want 3", n, err)
	}
	if err := rt.SetDevice(3); !errors.Is(err, ErrorInvalidValue) {
		t.Fatalf("SetDevice(3) = %v, want cudaErrorInvalidValue", err)
	}
	if err := rt.SetDevice(-1); !errors.Is(err, ErrorInvalidValue) {
		t.Fatalf("SetDevice(-1) = %v, want cudaErrorInvalidValue", err)
	}
}

// TestLocalMultiDeviceRouting checks allocations and copies route to the
// selected device and that pointers are per-device, like CUDA contexts:
// a device-0 pointer is invalid on device 1.
func TestLocalMultiDeviceRouting(t *testing.T) {
	rt, _ := openMultiTest(t, 2)
	const n = 64
	p0, err := rt.Malloc(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.MemcpyToDevice(p0, bytes.Repeat([]byte{0xA0}, n)); err != nil {
		t.Fatal(err)
	}

	if err := rt.SetDevice(1); err != nil {
		t.Fatal(err)
	}
	// The device-0 allocation does not exist in device 1's context.
	if err := rt.Free(p0); !errors.Is(err, ErrorInvalidDevicePointer) {
		t.Fatalf("cross-device Free = %v, want cudaErrorInvalidDevicePointer", err)
	}
	p1, err := rt.Malloc(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.MemcpyToDevice(p1, bytes.Repeat([]byte{0xB1}, n)); err != nil {
		t.Fatal(err)
	}

	// Each device reads back its own data after switching around.
	if err := rt.SetDevice(0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, n)
	if err := rt.MemcpyToHost(got, p0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0xA0}, n)) {
		t.Fatal("device 0 data corrupted by device 1 traffic")
	}
	if err := rt.SetDevice(1); err != nil {
		t.Fatal(err)
	}
	if err := rt.MemcpyToHost(got, p1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0xB1}, n)) {
		t.Fatal("device 1 data corrupted")
	}
}

// TestLocalMultiDeviceLaunch runs the module's kernel on a non-default
// device, proving SetDevice lazily loads the module into the new context.
func TestLocalMultiDeviceLaunch(t *testing.T) {
	rt, _ := openMultiTest(t, 2)
	if err := rt.SetDevice(1); err != nil {
		t.Fatal(err)
	}
	in := []float32{1, 2, 3, 4}
	ptr, err := rt.Malloc(uint32(4 * len(in)))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.MemcpyToDevice(ptr, Float32Bytes(in)); err != nil {
		t.Fatal(err)
	}
	params := append(Float32Bytes(nil),
		byte(ptr), byte(ptr>>8), byte(ptr>>16), byte(ptr>>24),
		byte(len(in)), 0, 0, 0)
	if err := rt.Launch("multi_scale2", Dim3{X: 1}, Dim3{X: 4}, 0, params); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 4*len(in))
	if err := rt.MemcpyToHost(out, ptr); err != nil {
		t.Fatal(err)
	}
	for i, x := range BytesFloat32(out) {
		if x != in[i]*2 {
			t.Fatalf("kernel on device 1: out[%d] = %v, want %v", i, x, in[i]*2)
		}
	}
}

// TestLocalMultiDeviceInitDelay checks the lazy context pays the CUDA
// environment initialization delay exactly once per device — and not at all
// under Preinitialized, the daemon's configuration.
func TestLocalMultiDeviceInitDelay(t *testing.T) {
	clk := vclock.NewSim()
	// Config.InitTime zero-defaults to DefaultInitTime, so every context
	// creation outside Preinitialized costs visible simulated time.
	mk := func() *gpu.Device { return gpu.New(gpu.Config{Clock: clk}) }
	d0, d1 := mk(), mk()
	rt, err := OpenLocal(d0, nil, Preinitialized(), ExtraDevices(d1))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	before := clk.Now()
	if err := rt.SetDevice(1); err != nil {
		t.Fatal(err)
	}
	if d := clk.Now() - before; d != 0 {
		t.Fatalf("Preinitialized SetDevice(1) advanced the clock by %v", d)
	}

	rt2, err := OpenLocal(mk(), nil, ExtraDevices(mk()))
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	before = clk.Now()
	if err := rt2.SetDevice(1); err != nil {
		t.Fatal(err)
	}
	first := clk.Now() - before
	if first == 0 {
		t.Fatal("first SetDevice(1) on a cold runtime paid no init delay")
	}
	before = clk.Now()
	if err := rt2.SetDevice(0); err != nil {
		t.Fatal(err)
	}
	if err := rt2.SetDevice(1); err != nil {
		t.Fatal(err)
	}
	if d := clk.Now() - before; d != 0 {
		t.Fatalf("re-selecting an initialized device advanced the clock by %v", d)
	}
}
