package perfmodel

import (
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
	"rcuda/internal/protocol"
)

// TableIIRow is one remote API call of a case study with its message sizes
// and estimated transfer times on a network — one row of the paper's
// Table II, evaluated at a concrete problem size.
type TableIIRow struct {
	Op    protocol.Op
	Count int // how many times the call occurs (e.g. cudaMalloc ×3 in MM)
	// SendBytes/RecvBytes are the Table I payload sizes at this problem
	// size (fixed fields plus any variable region).
	SendBytes, RecvBytes int64
	// SendTime/RecvTime estimate the one-way transfer times: measured
	// small-message latency for control traffic, bandwidth time for bulk
	// payloads (the paper's f/g-based memcpy estimates).
	SendTime, RecvTime time.Duration
}

// launchVariableBytes returns the launch message's variable region for each
// case study: the NUL-terminated kernel name plus the packed parameter
// block (sgemmNN with 4 params; fft512 with 3), giving the x of "x + 44".
func launchVariableBytes(cs calib.CaseStudy) int64 {
	if cs == calib.MM {
		return int64(len("sgemmNN")) + 1 + 4*4
	}
	return int64(len("fft512")) + 1 + 3*4
}

// TableII evaluates the remote API call costs of a case study at one
// problem size over one network. Rows appear in the paper's order:
// initialization, cudaMalloc, input cudaMemcpy, cudaLaunch, output
// cudaMemcpy, cudaFree.
func TableII(cs calib.CaseStudy, size int, link *netsim.Link) []TableIIRow {
	copyBytes := calib.CopyBytes(cs, size)
	numBufs := 1 // FFT transforms in place: one buffer
	if cs == calib.MM {
		numBufs = 3 // A, B, C
	}

	// Time helpers. Control traffic rides the measured small-message
	// curve; bulk payloads ride the bandwidth model, with their fixed
	// header priced as a small message.
	small := func(n int64) time.Duration { return link.SmallMessageTime(n) }
	bulk := func(fixed, payload int64) time.Duration {
		return small(fixed) + link.PayloadTime(payload)
	}

	initSend := int64(4 + calib.ModuleBytes(cs))
	launchVar := launchVariableBytes(cs)

	return []TableIIRow{
		{
			Op: protocol.OpInit, Count: 1,
			SendBytes: initSend, RecvBytes: 12,
			SendTime: small(initSend), RecvTime: small(12),
		},
		{
			Op: protocol.OpMalloc, Count: numBufs,
			SendBytes: 8, RecvBytes: 8,
			SendTime: small(8), RecvTime: small(8),
		},
		{
			Op: protocol.OpMemcpyToDevice, Count: calib.InputCopies(cs),
			SendBytes: copyBytes + 20, RecvBytes: 4,
			SendTime: bulk(20, copyBytes), RecvTime: small(4),
		},
		{
			Op: protocol.OpLaunch, Count: 1,
			SendBytes: 44 + launchVar, RecvBytes: 4,
			SendTime: small(44 + launchVar), RecvTime: small(4),
		},
		{
			Op: protocol.OpMemcpyToHost, Count: 1,
			SendBytes: 20, RecvBytes: copyBytes + 4,
			SendTime: small(20), RecvTime: bulk(4, copyBytes),
		},
		{
			Op: protocol.OpFree, Count: numBufs,
			SendBytes: 8, RecvBytes: 4,
			SendTime: small(8), RecvTime: small(4),
		},
	}
}

// Totals sums a Table II row set, weighting each row by its occurrence
// count, yielding the paper's per-table "Total" line.
func Totals(rows []TableIIRow) (sendBytes, recvBytes int64, sendTime, recvTime time.Duration) {
	for _, r := range rows {
		n := int64(r.Count)
		sendBytes += n * r.SendBytes
		recvBytes += n * r.RecvBytes
		sendTime += time.Duration(r.Count) * r.SendTime
		recvTime += time.Duration(r.Count) * r.RecvTime
	}
	return sendBytes, recvBytes, sendTime, recvTime
}
