package perfmodel

import (
	"testing"
	"time"

	"rcuda/internal/netsim"
	"rcuda/internal/protocol"
)

func inferenceSpec(batched bool) InferenceSpec {
	return InferenceSpec{
		ModuleBytes: 256,
		Layers:      24,
		Requests:    32,
		Polls:       1,
		Batched:     batched,
		DeviceName:  "Tesla C1060 (simulated)",
	}
}

// TestInferenceScheduleShape pins the message algebra of both schedules:
// the batched one replaces each request's 26 fire-and-forget exchanges
// with one frame and drops all but the first properties poll.
func TestInferenceScheduleShape(t *testing.T) {
	spec := inferenceSpec(false)
	setupTeardown := 1 + (spec.Layers+2)*2 + spec.Layers + 2 + 2 + 1 // init, mallocs+frees, uploads, stream+event create/destroy, finalize
	perReq := 1 + 1 + spec.Layers + 1 + 1 + spec.Polls + 1           // props, copy, launches, record, sync, polls, readback
	unbatched := InferenceSchedule(spec)
	if want := setupTeardown + spec.Requests*perReq; len(unbatched) != want {
		t.Fatalf("unbatched schedule has %d messages, want %d", len(unbatched), want)
	}

	spec.Batched = true
	batched := InferenceSchedule(spec)
	perReqBatched := 1 + 1 + spec.Polls + 1 // frame, sync, polls, readback
	if want := setupTeardown + 1 + spec.Requests*perReqBatched; len(batched) != want {
		t.Fatalf("batched schedule has %d messages, want %d", len(batched), want)
	}

	// Batching coalesces round trips; it must not invent or drop payload.
	// Frame and length-prefix framing is the only send-side growth, and
	// the per-sub-op response codes the only receive-side growth.
	var frames int
	for _, m := range batched {
		if m.Op == protocol.OpBatch {
			frames++
			subs := spec.Layers + 2
			if want := int64(16 + (4 + 24 + inferenceMatrixBytes) + spec.Layers*(4+int(launchWireBytes())) + (4 + 12)); m.SendBytes != want {
				t.Errorf("batch frame carries %d bytes, want %d", m.SendBytes, want)
			}
			if want := int64(8 + 4*subs); m.RecvBytes != want {
				t.Errorf("batch response carries %d bytes, want %d", m.RecvBytes, want)
			}
		}
	}
	if frames != spec.Requests {
		t.Fatalf("batched schedule has %d frames, want %d", frames, spec.Requests)
	}
}

// TestInferenceNetTimeBatchedWins asserts the modeled headline: at both
// testbed networks the batched schedule's wire time beats the unbatched
// one, by at least 3x at GigaE where round trips are most expensive
// relative to the work.
func TestInferenceNetTimeBatchedWins(t *testing.T) {
	for _, link := range netsim.Testbed() {
		speedup := InferenceSpeedup(link, inferenceSpec(false))
		t.Logf("%s: modeled batched speedup %.2fx", link.Name(), speedup)
		if speedup <= 1 {
			t.Errorf("%s: batching does not pay: %.2fx", link.Name(), speedup)
		}
		if link.Name() == "GigaE" && speedup < 3 {
			t.Errorf("GigaE modeled speedup %.2fx, want >= 3x", speedup)
		}
	}
}

// TestBuildInferenceFixedTime checks the fixed-time extraction contract:
// zero residual is legitimate (the loop's device work hides behind wire
// time), negative is rejected, and estimation adds the target's wire time
// back on.
func TestBuildInferenceFixedTime(t *testing.T) {
	spec := inferenceSpec(true)
	gige, ib := netsim.GigaE(), netsim.IB40G()
	net := InferenceNetTime(gige, spec)

	if _, err := BuildInference(spec, gige, net-time.Nanosecond); err == nil {
		t.Fatal("measurement below its own wire time accepted")
	}
	m, err := BuildInference(spec, gige, net)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fixed() != 0 {
		t.Fatalf("fixed time %v, want 0", m.Fixed())
	}
	if got, want := m.Estimate(ib), InferenceNetTime(ib, spec); got != want {
		t.Fatalf("estimate %v, want the target's wire time %v", got, want)
	}

	residual := 250 * time.Microsecond
	m, err = BuildInference(spec, gige, net+residual)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fixed() != residual {
		t.Fatalf("fixed time %v, want %v", m.Fixed(), residual)
	}
	if got, want := m.Estimate(ib), InferenceNetTime(ib, spec)+residual; got != want {
		t.Fatalf("estimate %v, want %v", got, want)
	}
}

// TestInferenceTotalsConsistent ties the totals helper to the schedule it
// summarizes.
func TestInferenceTotalsConsistent(t *testing.T) {
	for _, batched := range []bool{false, true} {
		spec := inferenceSpec(batched)
		msgs, send, recv := InferenceTotals(spec)
		sched := InferenceSchedule(spec)
		if msgs != len(sched) {
			t.Fatalf("batched=%v: totals count %d messages, schedule %d", batched, msgs, len(sched))
		}
		var wantSend, wantRecv int64
		for _, m := range sched {
			wantSend += m.SendBytes
			wantRecv += m.RecvBytes
		}
		if send != wantSend || recv != wantRecv {
			t.Fatalf("batched=%v: totals %d/%d bytes, schedule sums %d/%d", batched, send, recv, wantSend, wantRecv)
		}
	}
}
