package perfmodel

import (
	"fmt"
	"time"

	"rcuda/internal/netsim"
	"rcuda/internal/protocol"
)

// This file extends the paper's estimation model to the batched data path:
// latency-bound AI-style workloads whose remote time is dominated by the
// per-call round trips of many tiny launches and polls, not by bulk memcpy
// bandwidth. For those the memcpy-only fixed-time extraction of Sections
// V/VI is useless — nearly all of the time IS network time. Instead the
// model enumerates the exact wire schedule of the inference loop, message
// by message, prices it on a link, and extracts the (small) residual fixed
// time the same way: Fixed = measured − netTime(source), Estimate =
// Fixed + netTime(target).

// InferenceDim is the square activation/weight dimension of the modeled
// DNN inference loop — one 16×16 thread block per layer, the smallest
// launch the sgemm kernel accepts, maximizing the per-call overhead the
// batched path removes.
const InferenceDim = 16

// inferenceMatrixBytes is the wire payload of one InferenceDim² float32
// matrix (weights, activations, outputs all share the shape).
const inferenceMatrixBytes = 4 * InferenceDim * InferenceDim

// InferenceSpec describes one DNN-inference-loop session precisely enough
// to enumerate its wire schedule.
type InferenceSpec struct {
	// ModuleBytes is the size of the GPU module image sent with
	// initialization.
	ModuleBytes int
	// Layers is the network depth: launches per request.
	Layers int
	// Requests is how many inputs the session pushes through the network.
	Requests int
	// Polls is how many cudaEventQuery calls follow each request's
	// synchronization (a serving loop checking completion status).
	Polls int
	// Batched selects the coalesced wire schedule (rcuda.WithBatching):
	// the per-request copy, launches, and event record ride one OpBatch
	// frame, and device property polls are answered from the client cache
	// after the first.
	Batched bool
	// DeviceName sizes the cudaGetDeviceProperties response.
	DeviceName string
}

// InferenceMsg is one request/response exchange of the inference session.
// A zero RecvBytes means the request has no response (finalization).
type InferenceMsg struct {
	Op                   protocol.Op
	SendBytes, RecvBytes int64
}

// launchWireBytes is the wire size of one sgemm layer launch: the fixed
// header plus the NUL-terminated kernel name and four packed parameters.
func launchWireBytes() int64 {
	return 44 + int64(len("sgemmNN")) + 1 + 4*4
}

// InferenceSchedule lists every message of an inference session in order —
// exactly the traffic the functional workload generates, plus nothing. The
// workload test cross-checks this claim message count for message count.
func InferenceSchedule(spec InferenceSpec) []InferenceMsg {
	var msgs []InferenceMsg
	add := func(op protocol.Op, send, recv int64) {
		msgs = append(msgs, InferenceMsg{Op: op, SendBytes: send, RecvBytes: recv})
	}

	// Session setup: init with the module, one buffer per weight matrix
	// plus two activation ping-pong buffers, the weights uploaded
	// synchronously, one stream and one event.
	copyBytes := int64(24 + inferenceMatrixBytes)
	add(protocol.OpInit, 4+int64(spec.ModuleBytes), 12)
	for i := 0; i < spec.Layers+2; i++ {
		add(protocol.OpMalloc, 8, 8)
		if i < spec.Layers {
			add(protocol.OpMemcpyToDevice, 20+inferenceMatrixBytes, 4)
		}
	}
	add(protocol.OpStreamCreate, 4, 8)
	add(protocol.OpEventCreate, 4, 8)

	// Request loop.
	propsRecv := int64(36 + len(spec.DeviceName))
	launchBytes := launchWireBytes()
	for r := 0; r < spec.Requests; r++ {
		// The loop polls device properties to size its launches; the
		// batched client answers every poll after the first from cache.
		if !spec.Batched || r == 0 {
			add(protocol.OpGetDeviceProperties, 4, propsRecv)
		}
		if spec.Batched {
			// One OpBatch frame: header + length-prefixed input copy,
			// per-layer launches, and the event record; one combined
			// response carrying a code per sub-op.
			subs := spec.Layers + 2
			send := int64(16) + (4 + copyBytes) + int64(spec.Layers)*(4+launchBytes) + (4 + 12)
			add(protocol.OpBatch, send, int64(8+4*subs))
		} else {
			add(protocol.OpMemcpyToDeviceAsync, copyBytes, 4)
			for l := 0; l < spec.Layers; l++ {
				add(protocol.OpLaunch, launchBytes, 4)
			}
			add(protocol.OpEventRecord, 12, 4)
		}
		add(protocol.OpEventSynchronize, 8, 4)
		for p := 0; p < spec.Polls; p++ {
			add(protocol.OpEventQuery, 8, 4)
		}
		add(protocol.OpMemcpyToHost, 20, inferenceMatrixBytes+4)
	}

	// Teardown: event, stream, every buffer, finalization (no response).
	add(protocol.OpEventDestroy, 8, 4)
	add(protocol.OpStreamDestroy, 8, 4)
	for i := 0; i < spec.Layers+2; i++ {
		add(protocol.OpFree, 8, 4)
	}
	add(protocol.OpFinalize, 4, 0)
	return msgs
}

// InferenceTotals sums the schedule: message count (request/response pairs)
// and total bytes each way. The functional workload asserts these against
// its transport counters, pinning the schedule to the real wire exactly.
func InferenceTotals(spec InferenceSpec) (msgs int, sendBytes, recvBytes int64) {
	for _, m := range InferenceSchedule(spec) {
		msgs++
		sendBytes += m.SendBytes
		recvBytes += m.RecvBytes
	}
	return msgs, sendBytes, recvBytes
}

// InferenceNetTime prices the session's wire schedule on a link: the sum of
// every message's send and response wire times, in the strictly synchronous
// request/response discipline of the protocol.
func InferenceNetTime(link *netsim.Link, spec InferenceSpec) time.Duration {
	var total time.Duration
	for _, m := range InferenceSchedule(spec) {
		total += link.WireTime(m.SendBytes)
		if m.RecvBytes > 0 {
			total += link.WireTime(m.RecvBytes)
		}
	}
	return total
}

// InferenceModel predicts inference-session times on any link from one
// measured execution on a source link.
type InferenceModel struct {
	Spec   InferenceSpec
	Source *netsim.Link
	fixed  time.Duration
}

// BuildInference extracts the network-independent fixed time from a
// measured execution. Unlike the memcpy-dominated case studies, the
// latency-bound loop hides its tiny kernels behind wire time, so the fixed
// time may legitimately be zero; only a measurement below its own wire time
// is rejected as inconsistent with the schedule.
func BuildInference(spec InferenceSpec, source *netsim.Link, measured time.Duration) (*InferenceModel, error) {
	fixed := measured - InferenceNetTime(source, spec)
	if fixed < 0 {
		return nil, fmt.Errorf("perfmodel: inference measured %v on %s is below its own wire time %v",
			measured, source.Name(), measured-fixed)
	}
	return &InferenceModel{Spec: spec, Source: source, fixed: fixed}, nil
}

// Fixed returns the extracted network-independent time.
func (m *InferenceModel) Fixed() time.Duration { return m.fixed }

// Estimate predicts the session time on a target link: fixed time plus the
// target's wire time for the same schedule.
func (m *InferenceModel) Estimate(target *netsim.Link) time.Duration {
	return m.fixed + InferenceNetTime(target, m.Spec)
}

// InferenceSpeedup returns the modeled whole-session speedup of the batched
// schedule over the unbatched one on a link, with everything else equal —
// the headline number of the batching optimization.
func InferenceSpeedup(link *netsim.Link, spec InferenceSpec) float64 {
	batched, unbatched := spec, spec
	batched.Batched = true
	unbatched.Batched = false
	b := InferenceNetTime(link, batched)
	if b <= 0 {
		return 0
	}
	return float64(InferenceNetTime(link, unbatched)) / float64(b)
}
