package perfmodel

import (
	"math"
	"testing"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
	"rcuda/internal/protocol"
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %g, want %g (tol %g)", msg, got, want, tol)
	}
}

// Table III: per-copy estimated transfer times on the testbed networks.
func TestTransferTimeReproducesTableIII(t *testing.T) {
	ge, ib := netsim.GigaE(), netsim.IB40G()
	approx(t, ms(TransferTime(ge, calib.MM, 4096)), 569.4, 0.6, "MM 4096 GigaE")
	approx(t, ms(TransferTime(ib, calib.MM, 4096)), 46.8, 0.1, "MM 4096 40GI")
	approx(t, ms(TransferTime(ge, calib.MM, 18432)), 11530.2, 12, "MM 18432 GigaE")
	approx(t, ms(TransferTime(ib, calib.MM, 18432)), 948.0, 1, "MM 18432 40GI")
	approx(t, ms(TransferTime(ge, calib.FFT, 2048)), 71.2, 0.1, "FFT 2048 GigaE")
	approx(t, ms(TransferTime(ib, calib.FFT, 16384)), 46.8, 0.1, "FFT 16384 40GI")
}

// Table V: per-copy estimated transfer times on the five target networks.
func TestTransferTimeReproducesTableV(t *testing.T) {
	cases := []struct {
		net  string
		cs   calib.CaseStudy
		size int
		want float64
	}{
		{"10GE", calib.MM, 4096, 72.7},
		{"10GI", calib.MM, 8192, 263.9},
		{"Myr", calib.MM, 12288, 768.0},
		{"F-HT", calib.MM, 16384, 710.1},
		{"A-HT", calib.MM, 18432, 449.4},
		{"10GE", calib.FFT, 2048, 9.1},
		{"10GI", calib.FFT, 8192, 33.0},
		{"Myr", calib.FFT, 12288, 64.0},
		{"F-HT", calib.FFT, 16384, 44.4},
		{"A-HT", calib.FFT, 16384, 22.2},
	}
	for _, c := range cases {
		link, err := netsim.ByName(c.net)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, ms(TransferTime(link, c.cs, c.size)), c.want, c.want*0.01+0.06,
			c.net+" "+c.cs.String())
	}
}

func TestTotalTransferMultiplier(t *testing.T) {
	ge := netsim.GigaE()
	if TotalTransferTime(ge, calib.MM, 4096) != 3*TransferTime(ge, calib.MM, 4096) {
		t.Fatal("MM multiplies by 3")
	}
	if TotalTransferTime(ge, calib.FFT, 2048) != 2*TransferTime(ge, calib.FFT, 2048) {
		t.Fatal("FFT multiplies by 2")
	}
}

// Feed the model the paper's own published measurements and check that it
// reproduces the paper's fixed times, estimates, and error rates (Table IV).
func TestCrossValidationReproducesTableIV(t *testing.T) {
	ge, ib := netsim.GigaE(), netsim.IB40G()
	for _, cs := range []calib.CaseStudy{calib.MM, calib.FFT} {
		geMeas := make(map[int]time.Duration)
		ibMeas := make(map[int]time.Duration)
		for _, size := range calib.Sizes(cs) {
			g, _ := calib.PaperMeasured(cs, "GigaE", size)
			i, _ := calib.PaperMeasured(cs, "40GI", size)
			geMeas[size], ibMeas[size] = g, i
		}
		rows, err := CrossValidate(cs, ge, ib, geMeas, ibMeas)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rows {
			wantFixed, _ := calib.PaperFixed(cs, "GigaE", row.Size)
			if rel := math.Abs(row.Fixed.Seconds()-wantFixed.Seconds()) / wantFixed.Seconds(); rel > 0.02 {
				t.Fatalf("%v %d: fixed %v, paper %v (%.1f%% off)",
					cs, row.Size, row.Fixed, wantFixed, rel*100)
			}
			wantErr, _ := calib.PaperCrossError(cs, "GigaE", row.Size)
			if math.Abs(row.RelativeErrorPc-wantErr) > 1.5 {
				t.Fatalf("%v %d: error %.2f%%, paper %.2f%%", cs, row.Size, row.RelativeErrorPc, wantErr)
			}
		}
		// And the reverse direction.
		rows, err = CrossValidate(cs, ib, ge, ibMeas, geMeas)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range rows {
			wantErr, _ := calib.PaperCrossError(cs, "40GI", row.Size)
			if math.Abs(row.RelativeErrorPc-wantErr) > 1.5 {
				t.Fatalf("%v %d reverse: error %.2f%%, paper %.2f%%", cs, row.Size, row.RelativeErrorPc, wantErr)
			}
		}
	}
}

// The error-rate shape of the paper's conclusion: ~|2.2|% for MM, up to
// ~34% for FFT on the GigaE-based model.
func TestErrorShapeMMSmallFFTLarge(t *testing.T) {
	ge, ib := netsim.GigaE(), netsim.IB40G()
	load := func(cs calib.CaseStudy) (map[int]time.Duration, map[int]time.Duration) {
		a := make(map[int]time.Duration)
		b := make(map[int]time.Duration)
		for _, size := range calib.Sizes(cs) {
			g, _ := calib.PaperMeasured(cs, "GigaE", size)
			i, _ := calib.PaperMeasured(cs, "40GI", size)
			a[size], b[size] = g, i
		}
		return a, b
	}
	mmG, mmI := load(calib.MM)
	rows, _ := CrossValidate(calib.MM, ge, ib, mmG, mmI)
	for _, r := range rows {
		if math.Abs(r.RelativeErrorPc) > 3 {
			t.Fatalf("MM error %.2f%% at %d exceeds the paper's ~2.2%% bound", r.RelativeErrorPc, r.Size)
		}
	}
	fftG, fftI := load(calib.FFT)
	rows, _ = CrossValidate(calib.FFT, ge, ib, fftG, fftI)
	if rows[0].RelativeErrorPc < 20 {
		t.Fatalf("FFT smallest-batch error %.2f%% should be large (paper: 33.95%%)", rows[0].RelativeErrorPc)
	}
	// Error decreases with transfer size.
	for i := 1; i < len(rows); i++ {
		if rows[i].RelativeErrorPc > rows[i-1].RelativeErrorPc {
			t.Fatalf("FFT error should shrink with batch size: %v", rows)
		}
	}
}

// Estimates for the five target networks must land near Table VI when fed
// the paper's measurements.
func TestEstimateReproducesTableVI(t *testing.T) {
	ge := netsim.GigaE()
	for _, cs := range []calib.CaseStudy{calib.MM, calib.FFT} {
		meas := make(map[int]time.Duration)
		for _, size := range calib.Sizes(cs) {
			g, _ := calib.PaperMeasured(cs, "GigaE", size)
			meas[size] = g
		}
		model, err := Build(cs, ge, meas)
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range calib.Sizes(cs) {
			for _, netName := range calib.TargetNetworks() {
				link, err := netsim.ByName(netName)
				if err != nil {
					t.Fatal(err)
				}
				got, err := model.Estimate(link, size)
				if err != nil {
					t.Fatal(err)
				}
				want, ok := calib.PaperTargetEstimate(cs, "GigaE", netName, size)
				if !ok {
					t.Fatalf("missing paper estimate %v %s %d", cs, netName, size)
				}
				if rel := math.Abs(got.Seconds()-want.Seconds()) / want.Seconds(); rel > 0.03 {
					t.Fatalf("%v %s %d: estimate %v, paper %v (%.1f%% off)",
						cs, netName, size, got, want, rel*100)
				}
			}
		}
	}
}

func TestBuildRejectsDegenerateInput(t *testing.T) {
	ge := netsim.GigaE()
	if _, err := Build(calib.MM, ge, nil); err == nil {
		t.Fatal("empty measurements must fail")
	}
	// A measurement below its own transfer time is physically impossible.
	bad := map[int]time.Duration{4096: time.Millisecond}
	if _, err := Build(calib.MM, ge, bad); err == nil {
		t.Fatal("measurement below transfer time must fail")
	}
}

func TestModelUnknownSize(t *testing.T) {
	ge := netsim.GigaE()
	m, err := Build(calib.MM, ge, map[int]time.Duration{4096: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Estimate(netsim.IB40G(), 8192); err == nil {
		t.Fatal("estimating an unmeasured size must fail")
	}
	if got := m.Sizes(); len(got) != 1 || got[0] != 4096 {
		t.Fatalf("Sizes() = %v", got)
	}
}

func TestCrossValidateMissingTargetSize(t *testing.T) {
	ge, ib := netsim.GigaE(), netsim.IB40G()
	src := map[int]time.Duration{4096: 4 * time.Second}
	if _, err := CrossValidate(calib.MM, ge, ib, src, map[int]time.Duration{}); err == nil {
		t.Fatal("missing validation measurement must fail")
	}
}

func TestEligibility(t *testing.T) {
	ge := netsim.GigaE()
	meas := map[int]time.Duration{}
	for _, size := range calib.Sizes(calib.MM) {
		g, _ := calib.PaperMeasured(calib.MM, "GigaE", size)
		meas[size] = g
	}
	model, err := Build(calib.MM, ge, meas)
	if err != nil {
		t.Fatal(err)
	}
	// MM at 8192 over A-HT: remote GPU clearly beats the 8-core CPU.
	aht, _ := netsim.ByName("A-HT")
	e, err := Eligible(model, aht, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if !e.GPUWorth || !e.RemoteOK {
		t.Fatalf("MM 8192 over A-HT should be worth it: %+v", e)
	}
	if e.SpeedupPc <= 0 {
		t.Fatalf("speedup %.1f%% should be positive", e.SpeedupPc)
	}

	// FFT is not even GPU-eligible locally.
	fftMeas := map[int]time.Duration{}
	for _, size := range calib.Sizes(calib.FFT) {
		g, _ := calib.PaperMeasured(calib.FFT, "GigaE", size)
		fftMeas[size] = g
	}
	fftModel, err := Build(calib.FFT, ge, fftMeas)
	if err != nil {
		t.Fatal(err)
	}
	e, err = Eligible(fftModel, aht, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if e.GPUWorth || e.RemoteOK {
		t.Fatalf("FFT should not be GPU- or remote-eligible: %+v", e)
	}
}

func TestTableIIStructure(t *testing.T) {
	ge := netsim.GigaE()
	rows := TableII(calib.MM, 4096, ge)
	if len(rows) != 6 {
		t.Fatalf("TableII has %d rows, want 6", len(rows))
	}
	byOp := map[protocol.Op]TableIIRow{}
	for _, r := range rows {
		byOp[r.Op] = r
	}
	// Init: x+4 = 21490 bytes sent, 12 received, 338.7/44.4 µs on GigaE.
	init := byOp[protocol.OpInit]
	if init.SendBytes != 21490 || init.RecvBytes != 12 {
		t.Fatalf("init bytes %d/%d", init.SendBytes, init.RecvBytes)
	}
	approx(t, float64(init.SendTime)/float64(time.Microsecond), 338.7, 0.2, "init send µs")
	approx(t, float64(init.RecvTime)/float64(time.Microsecond), 44.4, 0.2, "init recv µs")
	// cudaMalloc ×3 in MM, 8/8 bytes, 22.2 µs each way.
	malloc := byOp[protocol.OpMalloc]
	if malloc.Count != 3 || malloc.SendBytes != 8 || malloc.RecvBytes != 8 {
		t.Fatalf("malloc row %+v", malloc)
	}
	approx(t, float64(malloc.SendTime)/float64(time.Microsecond), 22.2, 0.2, "malloc µs")
	// Input memcpy: 4m²+20 bytes sent, ×2.
	h2d := byOp[protocol.OpMemcpyToDevice]
	if h2d.Count != 2 || h2d.SendBytes != 4*4096*4096+20 || h2d.RecvBytes != 4 {
		t.Fatalf("h2d row %+v", h2d)
	}
	approx(t, ms(h2d.SendTime), 569.4, 0.7, "h2d payload time ≈ Table III")
	// Output memcpy receives 4m²+4.
	d2h := byOp[protocol.OpMemcpyToHost]
	if d2h.SendBytes != 20 || d2h.RecvBytes != 4*4096*4096+4 {
		t.Fatalf("d2h row %+v", d2h)
	}
	// Free ×3.
	if byOp[protocol.OpFree].Count != 3 {
		t.Fatal("free count")
	}
}

func TestTableIIFFTShape(t *testing.T) {
	ib := netsim.IB40G()
	rows := TableII(calib.FFT, 2048, ib)
	byOp := map[protocol.Op]TableIIRow{}
	for _, r := range rows {
		byOp[r.Op] = r
	}
	init := byOp[protocol.OpInit]
	if init.SendBytes != 7856 {
		t.Fatalf("FFT init sends %d, want 7856", init.SendBytes)
	}
	approx(t, float64(init.SendTime)/float64(time.Microsecond), 39.5, 0.2, "FFT init send µs on 40GI")
	if byOp[protocol.OpMalloc].Count != 1 || byOp[protocol.OpFree].Count != 1 {
		t.Fatal("FFT uses a single in-place buffer")
	}
	if byOp[protocol.OpMemcpyToDevice].Count != 1 {
		t.Fatal("FFT sends one input copy")
	}
	if got := byOp[protocol.OpMemcpyToDevice].SendBytes; got != 4096*2048+20 {
		t.Fatalf("FFT input copy %d bytes", got)
	}
}

func TestTableIITotalsDominatedByMemcpy(t *testing.T) {
	// Section V: all transfer times are negligible except the memcpys.
	ge := netsim.GigaE()
	rows := TableII(calib.MM, 4096, ge)
	_, _, sendTime, recvTime := Totals(rows)
	total := sendTime + recvTime
	memcpy := 2*rows[2].SendTime + rows[4].RecvTime
	if frac := float64(memcpy) / float64(total); frac < 0.99 {
		t.Fatalf("memcpy accounts for %.3f of transfer time, want > 0.99", frac)
	}
}

func TestTotalsArithmetic(t *testing.T) {
	rows := []TableIIRow{
		{Count: 2, SendBytes: 10, RecvBytes: 4, SendTime: time.Millisecond, RecvTime: time.Second},
		{Count: 1, SendBytes: 5, RecvBytes: 1, SendTime: time.Microsecond},
	}
	sb, rb, st, rt := Totals(rows)
	if sb != 25 || rb != 9 {
		t.Fatalf("byte totals %d/%d", sb, rb)
	}
	if st != 2*time.Millisecond+time.Microsecond || rt != 2*time.Second {
		t.Fatalf("time totals %v/%v", st, rt)
	}
}

func TestCrossoverSize(t *testing.T) {
	ge := netsim.GigaE()
	meas := map[int]time.Duration{}
	for _, size := range calib.Sizes(calib.MM) {
		g, _ := calib.PaperMeasured(calib.MM, "GigaE", size)
		meas[size] = g
	}
	model, err := Build(calib.MM, ge, meas)
	if err != nil {
		t.Fatal(err)
	}
	// On the fast A-HT network even m=4096 wins remotely over the CPU
	// (2.00s estimated vs 2.08s CPU in Table VI).
	aht, _ := netsim.ByName("A-HT")
	size, ok := CrossoverSize(model, aht)
	if !ok || size != 4096 {
		t.Fatalf("A-HT crossover = %d, %v; want 4096", size, ok)
	}
	// On GigaE itself the remote GPU only catches the CPU at larger m
	// (Table VI: GigaE loses until m=14336).
	size, ok = CrossoverSize(model, ge)
	if !ok || size <= 8192 {
		t.Fatalf("GigaE crossover = %d, %v; want a large size", size, ok)
	}

	// FFT never crosses over on any network.
	fftMeas := map[int]time.Duration{}
	for _, s := range calib.Sizes(calib.FFT) {
		g, _ := calib.PaperMeasured(calib.FFT, "GigaE", s)
		fftMeas[s] = g
	}
	fftModel, err := Build(calib.FFT, ge, fftMeas)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := CrossoverSize(fftModel, aht); ok {
		t.Fatal("FFT should never beat the CPU remotely")
	}
}

func TestMinimumBandwidth(t *testing.T) {
	ge := netsim.GigaE()
	meas := map[int]time.Duration{}
	for _, size := range calib.Sizes(calib.MM) {
		g, _ := calib.PaperMeasured(calib.MM, "GigaE", size)
		meas[size] = g
	}
	model, err := Build(calib.MM, ge, meas)
	if err != nil {
		t.Fatal(err)
	}
	bw, ok := MinimumBandwidth(model, 8192)
	if !ok {
		t.Fatal("MM 8192 must be remotable at some bandwidth")
	}
	// Sanity: the threshold must sit below the networks that win in
	// Table VI and the estimate at exactly that bandwidth must match
	// the CPU time.
	if bw <= 0 || bw >= 750 {
		t.Fatalf("minimum bandwidth %.1f MB/s implausible (Myrinet at 750 already wins)", bw)
	}
	link, err := netsim.Custom("threshold", bw)
	if err != nil {
		t.Fatal(err)
	}
	est, err := model.Estimate(link, 8192)
	if err != nil {
		t.Fatal(err)
	}
	cpu := calib.CPUTime(calib.MM, 8192)
	if rel := math.Abs(est.Seconds()-cpu.Seconds()) / cpu.Seconds(); rel > 0.001 {
		t.Fatalf("estimate at threshold bandwidth %v differs from CPU %v", est, cpu)
	}

	// FFT: not remotable at any bandwidth.
	fftMeas := map[int]time.Duration{}
	for _, s := range calib.Sizes(calib.FFT) {
		g, _ := calib.PaperMeasured(calib.FFT, "GigaE", s)
		fftMeas[s] = g
	}
	fftModel, err := Build(calib.FFT, ge, fftMeas)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := MinimumBandwidth(fftModel, 8192); ok {
		t.Fatal("FFT must not be remotable at any bandwidth")
	}
	if _, ok := MinimumBandwidth(model, 5000); ok {
		t.Fatal("unmeasured size must report !ok")
	}
}

func TestBandwidthSweep(t *testing.T) {
	ge := netsim.GigaE()
	meas := map[int]time.Duration{}
	for _, size := range calib.Sizes(calib.MM) {
		g, _ := calib.PaperMeasured(calib.MM, "GigaE", size)
		meas[size] = g
	}
	model, err := Build(calib.MM, ge, meas)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := BandwidthSweep(model, 8192, 50, 5000, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 20 {
		t.Fatalf("sweep produced %d points", len(pts))
	}
	// Monotone: more bandwidth never hurts; geometric spacing covers the
	// requested range.
	for i := 1; i < len(pts); i++ {
		if pts[i].Remote > pts[i-1].Remote {
			t.Fatalf("remote time rose with bandwidth at point %d", i)
		}
		if pts[i].BandwidthMBps <= pts[i-1].BandwidthMBps {
			t.Fatal("bandwidths must increase")
		}
	}
	if math.Abs(pts[0].BandwidthMBps-50) > 1e-9 ||
		math.Abs(pts[len(pts)-1].BandwidthMBps-5000) > 1 {
		t.Fatalf("sweep range [%g, %g]", pts[0].BandwidthMBps, pts[len(pts)-1].BandwidthMBps)
	}
	// The sweep must straddle the CPU line: slow end loses, fast end wins
	// (MinimumBandwidth for MM 8192 is ~240 MB/s).
	if pts[0].Remote <= pts[0].CPU {
		t.Fatal("50 MB/s should lose to the CPU")
	}
	last := pts[len(pts)-1]
	if last.Remote >= last.CPU {
		t.Fatal("5000 MB/s should beat the CPU")
	}
}

func TestBandwidthSweepValidation(t *testing.T) {
	ge := netsim.GigaE()
	model, err := Build(calib.MM, ge, map[int]time.Duration{4096: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BandwidthSweep(model, 4096, 100, 1000, 1); err == nil {
		t.Fatal("too few points must fail")
	}
	if _, err := BandwidthSweep(model, 4096, 1000, 100, 5); err == nil {
		t.Fatal("inverted range must fail")
	}
	if _, err := BandwidthSweep(model, 4096, 0, 100, 5); err == nil {
		t.Fatal("zero low bound must fail")
	}
	if _, err := BandwidthSweep(model, 9999, 100, 1000, 5); err == nil {
		t.Fatal("unmeasured size must fail")
	}
}
