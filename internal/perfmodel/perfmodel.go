// Package perfmodel implements the paper's estimation model (Sections V
// and VI).
//
// The method: the transfer times of all remote calls are negligible except
// the bulk cudaMemcpy payloads, so subtracting the payload transfer times
// (per-copy time × 3 for MM, × 2 for FFT) from a measured execution on a
// source network yields a network-independent *fixed time* — computation,
// middleware management, data generation, PCIe. Adding the payload times of
// any target network to that fixed time predicts the execution there.
// Cross-validating the two testbed networks against each other (Table IV)
// bounds the error; applying the models to five HPC interconnects yields
// the projections of Table VI.
package perfmodel

import (
	"fmt"
	"math"
	"sort"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
	"rcuda/internal/stats"
)

// TransferTime returns the estimated time of a single bulk memory copy of
// the case study at the given size over a network — one cell of Table III
// (testbed networks) or Table V (target networks): payload ÷ effective
// one-way bandwidth.
func TransferTime(link *netsim.Link, cs calib.CaseStudy, size int) time.Duration {
	return link.PayloadTime(calib.CopyBytes(cs, size))
}

// TotalTransferTime returns the payload time of all bulk copies of one
// execution: ×3 for MM (two inputs, one output), ×2 for FFT.
func TotalTransferTime(link *netsim.Link, cs calib.CaseStudy, size int) time.Duration {
	return time.Duration(calib.CopyCount(cs)) * TransferTime(link, cs, size)
}

// Model predicts execution times of one case study from measurements taken
// on a single source network.
type Model struct {
	CS     calib.CaseStudy
	Source *netsim.Link
	// fixed maps problem size to the extracted network-independent time.
	fixed map[int]time.Duration
}

// Build derives a model from measured execution times on the source
// network, one per problem size.
func Build(cs calib.CaseStudy, source *netsim.Link, measured map[int]time.Duration) (*Model, error) {
	if len(measured) == 0 {
		return nil, fmt.Errorf("perfmodel: no measurements for %v on %s", cs, source.Name())
	}
	m := &Model{CS: cs, Source: source, fixed: make(map[int]time.Duration, len(measured))}
	for size, t := range measured {
		fixed := t - TotalTransferTime(source, cs, size)
		if fixed <= 0 {
			return nil, fmt.Errorf("perfmodel: %v size %d measured %v is below its own transfer time on %s",
				cs, size, t, source.Name())
		}
		m.fixed[size] = fixed
	}
	return m, nil
}

// Sizes returns the problem sizes the model covers, ascending.
func (m *Model) Sizes() []int {
	out := make([]int, 0, len(m.fixed))
	for s := range m.fixed {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Fixed returns the extracted fixed time for a size the model was built on.
func (m *Model) Fixed(size int) (time.Duration, error) {
	f, ok := m.fixed[size]
	if !ok {
		return 0, fmt.Errorf("perfmodel: size %d not measured on %s", size, m.Source.Name())
	}
	return f, nil
}

// Estimate predicts the execution time on a target network: fixed time plus
// the target's payload transfer time.
func (m *Model) Estimate(target *netsim.Link, size int) (time.Duration, error) {
	f, err := m.Fixed(size)
	if err != nil {
		return 0, err
	}
	return f + TotalTransferTime(target, m.CS, size), nil
}

// CrossRow is one row of a Table IV half: the model built on the source
// network predicts the execution on the validation network, and the signed
// relative error compares that against the validation measurement.
type CrossRow struct {
	Size            int
	MeasuredSource  time.Duration // measured on the model's source network
	Fixed           time.Duration // extracted fixed time
	Estimated       time.Duration // prediction for the validation network
	MeasuredTarget  time.Duration // measured on the validation network
	RelativeErrorPc float64       // (estimated-measured)/measured × 100
}

// CrossValidate builds a model from source-network measurements and
// validates it against measurements of the same sizes on another network,
// reproducing one half of Table IV.
func CrossValidate(cs calib.CaseStudy, source, target *netsim.Link,
	sourceMeasured, targetMeasured map[int]time.Duration) ([]CrossRow, error) {

	model, err := Build(cs, source, sourceMeasured)
	if err != nil {
		return nil, err
	}
	rows := make([]CrossRow, 0, len(sourceMeasured))
	for _, size := range model.Sizes() {
		got, ok := targetMeasured[size]
		if !ok {
			return nil, fmt.Errorf("perfmodel: size %d missing from %s measurements", size, target.Name())
		}
		est, err := model.Estimate(target, size)
		if err != nil {
			return nil, err
		}
		fixed, _ := model.Fixed(size)
		rows = append(rows, CrossRow{
			Size:            size,
			MeasuredSource:  sourceMeasured[size],
			Fixed:           fixed,
			Estimated:       est,
			MeasuredTarget:  got,
			RelativeErrorPc: stats.RelativeError(est.Seconds(), got.Seconds()) * 100,
		})
	}
	return rows, nil
}

// Eligible reports the paper's closing criterion: a problem is worth
// offloading to a remote GPU on the given network if the predicted remote
// time beats the local CPU time. It also reports whether the problem is
// GPU-eligible at all (local GPU beats local CPU), since "if the problem is
// well suited to be accelerated in a local GPU, then the overhead of using
// a remote GPU will be worth the cost reduction".
type Eligibility struct {
	CPU       time.Duration
	LocalGPU  time.Duration
	Remote    time.Duration
	GPUWorth  bool // local GPU beats CPU
	RemoteOK  bool // remote GPU beats CPU
	SpeedupPc float64
}

// SweepPoint is one sample of a bandwidth sensitivity sweep.
type SweepPoint struct {
	BandwidthMBps float64
	Remote        time.Duration
	// CPU is the local-CPU baseline at the swept size, constant across
	// the sweep but repeated for convenient plotting.
	CPU time.Duration
}

// BandwidthSweep evaluates the remote execution time of a measured problem
// size over a continuous range of interconnect bandwidths — a generalized
// Figure 5/6 with bandwidth on the x axis instead of discrete networks,
// showing exactly where an interconnect becomes fast enough. Bandwidths
// are sampled geometrically between lo and hi MiB/s.
func BandwidthSweep(m *Model, size int, loMBps, hiMBps float64, points int) ([]SweepPoint, error) {
	if points < 2 {
		return nil, fmt.Errorf("perfmodel: need at least 2 sweep points, got %d", points)
	}
	if loMBps <= 0 || hiMBps <= loMBps {
		return nil, fmt.Errorf("perfmodel: bad bandwidth range [%g, %g]", loMBps, hiMBps)
	}
	if _, err := m.Fixed(size); err != nil {
		return nil, err
	}
	cpu := calib.CPUTime(m.CS, size)
	ratio := math.Pow(hiMBps/loMBps, 1/float64(points-1))
	out := make([]SweepPoint, 0, points)
	bw := loMBps
	for i := 0; i < points; i++ {
		link, err := netsim.Custom("sweep", bw)
		if err != nil {
			return nil, err
		}
		est, err := m.Estimate(link, size)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{BandwidthMBps: bw, Remote: est, CPU: cpu})
		bw *= ratio
	}
	return out, nil
}

// CrossoverSize returns the smallest of the model's problem sizes at which
// the remote GPU beats the local CPU on the target network, and whether one
// exists. The left-hand plots of Figures 5 and 6 show exactly this
// crossover: below it the communication overhead eats the GPU's advantage.
func CrossoverSize(m *Model, target *netsim.Link) (int, bool) {
	for _, size := range m.Sizes() {
		est, err := m.Estimate(target, size)
		if err != nil {
			continue
		}
		if est < calib.CPUTime(m.CS, size) {
			return size, true
		}
	}
	return 0, false
}

// MinimumBandwidth returns the smallest effective one-way bandwidth (MiB/s)
// at which the remote GPU still beats the local CPU for the given problem
// size, found by bisection over bandwidth-only network models. It reports
// ok=false when even an infinitely fast network would lose (the problem is
// not GPU-eligible).
func MinimumBandwidth(m *Model, size int) (float64, bool) {
	fixed, err := m.Fixed(size)
	if err != nil {
		return 0, false
	}
	cpu := calib.CPUTime(m.CS, size)
	if fixed >= cpu {
		return 0, false // even zero transfer time loses
	}
	// transfer budget = cpu - fixed; bandwidth = bytes / budget.
	budget := (cpu - fixed).Seconds()
	bytes := float64(calib.CopyCount(m.CS)) * float64(calib.CopyBytes(m.CS, size))
	return bytes / budget / (1 << 20), true
}

// Eligible evaluates the remote-offload decision using a model estimate and
// the calibrated local baselines.
func Eligible(m *Model, target *netsim.Link, size int) (Eligibility, error) {
	remote, err := m.Estimate(target, size)
	if err != nil {
		return Eligibility{}, err
	}
	cpu := calib.CPUTime(m.CS, size)
	gpuLocal := calib.LocalInit(m.CS) + calib.DataGenTime(m.CS, size) +
		time.Duration(calib.CopyCount(m.CS))*calib.PCIeTime(m.CS, size) +
		calib.KernelTime(m.CS, size) + calib.Mgmt
	e := Eligibility{
		CPU:      cpu,
		LocalGPU: gpuLocal,
		Remote:   remote,
		GPUWorth: gpuLocal < cpu,
		RemoteOK: remote < cpu,
	}
	if remote > 0 {
		e.SpeedupPc = (cpu.Seconds()/remote.Seconds() - 1) * 100
	}
	return e, nil
}
