// Package faults provides deterministic fault injection for the rCUDA
// data path. A Plan decides, one transport operation at a time, whether
// that operation proceeds cleanly or suffers an injected fault — a
// connection reset, a mid-frame truncation, a latency spike, a partial
// write, or a stall. Plans come in two flavors:
//
//   - Script: an explicit list of injections pinned to operation indices,
//     for tests that need a fault at an exact point in a dialogue
//     ("reset during the third chunk").
//
//   - Seeded: a pseudo-random plan driven entirely by a seed and per-kind
//     rates. The same seed always yields the same fault sequence, so any
//     chaos-test failure replays byte-identically from its seed.
//
// The plan itself never touches a connection; transport.FaultyConn asks it
// for a Decision before every Send and Recv and acts on the answer. Every
// non-clean decision is recorded in the plan's history, which tests use to
// assert determinism and to print a replayable fault trace on failure.
package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Kind is the class of an injected fault.
type Kind uint8

// Fault kinds, ordered roughly by severity.
const (
	// KindNone means the operation proceeds cleanly.
	KindNone Kind = iota
	// KindLatency delays the operation by Decision.Delay, then lets it
	// proceed — a transient congestion spike.
	KindLatency
	// KindPartialWrite splits the frame across two raw writes. The byte
	// stream is intact, so the peer must reassemble transparently; the
	// fault exercises mid-frame read paths rather than failing anything.
	KindPartialWrite
	// KindStall simulates a peer going silent: the operation blocks for
	// Decision.Delay and then fails with a deadline error, as a hung
	// connection surfaces through an operation timeout.
	KindStall
	// KindTruncate cuts the frame short on the wire and tears the
	// connection down, so the peer observes a truncated frame and the
	// local side observes a reset.
	KindTruncate
	// KindReset tears the connection down before the operation, as an
	// abrupt peer death or RST would.
	KindReset

	kindCount
)

// String returns a short stable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindLatency:
		return "latency"
	case KindPartialWrite:
		return "partial-write"
	case KindStall:
		return "stall"
	case KindTruncate:
		return "truncate"
	case KindReset:
		return "reset"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Dir is the transport direction a decision applies to.
type Dir uint8

// Directions. DirAny is only meaningful in scripted injections, where it
// matches whichever direction the pinned operation turns out to be.
const (
	DirAny Dir = iota
	DirSend
	DirRecv
)

// String returns a short stable name for the direction.
func (d Dir) String() string {
	switch d {
	case DirAny:
		return "any"
	case DirSend:
		return "send"
	case DirRecv:
		return "recv"
	default:
		return fmt.Sprintf("Dir(%d)", uint8(d))
	}
}

// Decision is the plan's verdict for one transport operation.
type Decision struct {
	Kind Kind
	// Delay applies to KindLatency and KindStall.
	Delay time.Duration
	// KeepBytes bounds how many payload bytes survive a KindTruncate or
	// land in the first write of a KindPartialWrite. Zero means "use
	// KeepFrac of the frame".
	KeepBytes int
	// KeepFrac is the fractional form of KeepBytes, used when KeepBytes
	// is zero; the connection resolves it against the frame size. Zero
	// means half the frame.
	KeepFrac float64
}

// Injection pins a decision to one operation of a scripted plan.
type Injection struct {
	// Op is the zero-based index of the operation the injection fires on,
	// counting every Send and Recv the plan is consulted for.
	Op int
	// Dir restricts the injection to one direction; DirAny matches both.
	Dir Dir
	Decision
}

// Event is one recorded injection: where it fired and what it did.
type Event struct {
	Op  int
	Dir Dir
	Decision
}

// String formats the event compactly for fault traces.
func (e Event) String() string {
	return fmt.Sprintf("op=%d %s %s delay=%v keep=%d/%.2f",
		e.Op, e.Dir, e.Kind, e.Delay, e.KeepBytes, e.KeepFrac)
}

// Config sets the per-operation fault rates of a seeded plan. Rates are
// probabilities in [0, 1] and are evaluated in severity order (reset,
// truncate, stall, partial write, latency); their sum should stay below 1.
type Config struct {
	ResetRate        float64
	TruncateRate     float64
	StallRate        float64
	PartialWriteRate float64
	LatencyRate      float64
	// LatencyDelay is the base latency spike; each spike is scaled by a
	// seeded factor in [0.5, 1.5). Defaults to 200µs.
	LatencyDelay time.Duration
	// StallDelay is how long a stalled operation blocks before failing
	// with a deadline error. Defaults to 2ms.
	StallDelay time.Duration
}

// Total returns the summed per-operation fault probability.
func (c Config) Total() float64 {
	return c.ResetRate + c.TruncateRate + c.StallRate + c.PartialWriteRate + c.LatencyRate
}

// Plan is a deterministic fault schedule. It is safe for concurrent use,
// though the recorded operation order is only meaningful when the
// connection consulting it serializes its operations (as the strictly
// request/response rCUDA transports do).
type Plan struct {
	mu      sync.Mutex
	script  []Injection
	rng     *rand.Rand
	cfg     Config
	op      int
	history []Event
	counts  [kindCount]int64
}

// Script builds a plan that injects exactly the given faults, each at its
// pinned operation index, and nothing else.
func Script(injections ...Injection) *Plan {
	s := make([]Injection, len(injections))
	copy(s, injections)
	return &Plan{script: s}
}

// Seeded builds a pseudo-random plan: every operation independently draws
// a fault according to cfg's rates from a generator seeded with seed. Two
// plans with the same seed and config produce identical fault sequences.
func Seeded(seed int64, cfg Config) *Plan {
	if cfg.LatencyDelay <= 0 {
		cfg.LatencyDelay = 200 * time.Microsecond
	}
	if cfg.StallDelay <= 0 {
		cfg.StallDelay = 2 * time.Millisecond
	}
	return &Plan{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// Next returns the decision for the next operation in the given direction
// and advances the plan. A nil plan always decides KindNone.
func (p *Plan) Next(dir Dir) Decision {
	if p == nil {
		return Decision{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	op := p.op
	p.op++
	var d Decision
	if p.rng != nil {
		d = p.draw()
	} else {
		for _, inj := range p.script {
			if inj.Op == op && (inj.Dir == DirAny || inj.Dir == dir) {
				d = inj.Decision
				break
			}
		}
	}
	p.counts[d.Kind]++
	if d.Kind != KindNone {
		p.history = append(p.history, Event{Op: op, Dir: dir, Decision: d})
	}
	return d
}

// draw picks one seeded decision. Exactly one uniform variate decides the
// kind; kinds that need extra randomness draw it only when selected, so
// the variate stream — and therefore the whole schedule — depends only on
// the sequence of decisions, never on frame contents or timing.
func (p *Plan) draw() Decision {
	u := p.rng.Float64()
	switch {
	case u < p.cfg.ResetRate:
		return Decision{Kind: KindReset}
	case u < p.cfg.ResetRate+p.cfg.TruncateRate:
		return Decision{Kind: KindTruncate, KeepFrac: 0.25 + p.rng.Float64()/2}
	case u < p.cfg.ResetRate+p.cfg.TruncateRate+p.cfg.StallRate:
		return Decision{Kind: KindStall, Delay: p.cfg.StallDelay}
	case u < p.cfg.ResetRate+p.cfg.TruncateRate+p.cfg.StallRate+p.cfg.PartialWriteRate:
		return Decision{Kind: KindPartialWrite, KeepFrac: 0.25 + p.rng.Float64()/2}
	case u < p.cfg.Total():
		scale := 0.5 + p.rng.Float64()
		return Decision{Kind: KindLatency, Delay: time.Duration(float64(p.cfg.LatencyDelay) * scale)}
	default:
		return Decision{}
	}
}

// Ops returns how many operations the plan has decided so far.
func (p *Plan) Ops() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.op
}

// Injected returns how many non-clean decisions the plan has made.
func (p *Plan) Injected() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var n int64
	for k := KindNone + 1; k < kindCount; k++ {
		n += p.counts[k]
	}
	return n
}

// Counts returns the number of decisions made per kind, including clean
// ones under KindNone.
func (p *Plan) Counts() map[Kind]int64 {
	m := make(map[Kind]int64)
	if p == nil {
		return m
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for k := Kind(0); k < kindCount; k++ {
		if p.counts[k] != 0 {
			m[k] = p.counts[k]
		}
	}
	return m
}

// History returns a copy of every injected fault in firing order. Replays
// of the same seeded plan yield element-wise identical histories.
func (p *Plan) History() []Event {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	h := make([]Event, len(p.history))
	copy(h, p.history)
	return h
}

// KeepFor resolves the decision's truncation/split point against a frame
// of size n bytes, always leaving the result in [0, n-1] so a truncated
// frame is genuinely short.
func (d Decision) KeepFor(n int) int {
	keep := d.KeepBytes
	if keep <= 0 {
		frac := d.KeepFrac
		if frac <= 0 || frac >= 1 {
			frac = 0.5
		}
		keep = int(float64(n) * frac)
	}
	if keep >= n {
		keep = n - 1
	}
	if keep < 0 {
		keep = 0
	}
	return keep
}
