package faults

import (
	"reflect"
	"testing"
	"time"
)

// TestSeededPlanReplaysIdentically is the determinism contract behind every
// chaos test: two plans built from the same seed and config must decide the
// identical fault sequence, event for event.
func TestSeededPlanReplaysIdentically(t *testing.T) {
	cfg := Config{
		ResetRate:        0.02,
		TruncateRate:     0.02,
		StallRate:        0.02,
		PartialWriteRate: 0.02,
		LatencyRate:      0.05,
	}
	drive := func(seed int64) []Event {
		p := Seeded(seed, cfg)
		for i := 0; i < 5000; i++ {
			dir := DirSend
			if i%2 == 1 {
				dir = DirRecv
			}
			p.Next(dir)
		}
		return p.History()
	}
	a, b := drive(42), drive(42)
	if len(a) == 0 {
		t.Fatal("seeded plan injected nothing in 5000 ops at ~13% total rate")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different histories:\n a %v\n b %v", a[:min(5, len(a))], b[:min(5, len(b))])
	}
	if c := drive(43); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical histories")
	}
}

// TestSeededPlanRatesRoughlyHold sanity-checks the per-kind rates over a
// long run so a misordered cumulative comparison cannot slip through.
func TestSeededPlanRatesRoughlyHold(t *testing.T) {
	const n = 20000
	cfg := Config{ResetRate: 0.01, LatencyRate: 0.10}
	p := Seeded(7, cfg)
	for i := 0; i < n; i++ {
		p.Next(DirSend)
	}
	counts := p.Counts()
	if got := counts[KindReset]; got < n/400 || got > n/25 {
		t.Fatalf("reset count %d wildly off a 1%% rate over %d ops", got, n)
	}
	if got := counts[KindLatency]; got < n/20 || got > n/5 {
		t.Fatalf("latency count %d wildly off a 10%% rate over %d ops", got, n)
	}
	if counts[KindTruncate] != 0 || counts[KindStall] != 0 {
		t.Fatalf("kinds with zero rate fired: %v", counts)
	}
	if p.Ops() != n {
		t.Fatalf("Ops() = %d, want %d", p.Ops(), n)
	}
}

// TestScriptedPlanFiresExactlyWhereTold pins injections to operation
// indices and directions and checks nothing else fires.
func TestScriptedPlanFiresExactlyWhereTold(t *testing.T) {
	p := Script(
		Injection{Op: 2, Dir: DirSend, Decision: Decision{Kind: KindReset}},
		Injection{Op: 3, Dir: DirSend, Decision: Decision{Kind: KindTruncate}}, // wrong dir: op 3 is a recv
		Injection{Op: 5, Dir: DirAny, Decision: Decision{Kind: KindStall, Delay: time.Millisecond}},
	)
	dirs := []Dir{DirSend, DirRecv, DirSend, DirRecv, DirSend, DirRecv}
	var got []Kind
	for _, dir := range dirs {
		got = append(got, p.Next(dir).Kind)
	}
	want := []Kind{KindNone, KindNone, KindReset, KindNone, KindNone, KindStall}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decisions %v, want %v", got, want)
	}
	if inj := p.Injected(); inj != 2 {
		t.Fatalf("Injected() = %d, want 2", inj)
	}
	hist := p.History()
	if len(hist) != 2 || hist[0].Op != 2 || hist[1].Op != 5 {
		t.Fatalf("history %v, want ops 2 and 5", hist)
	}
}

// TestNilPlanIsClean lets connections treat "no plan" as "no faults".
func TestNilPlanIsClean(t *testing.T) {
	var p *Plan
	if d := p.Next(DirSend); d.Kind != KindNone {
		t.Fatalf("nil plan decided %v", d.Kind)
	}
	if p.Injected() != 0 || p.Ops() != 0 || len(p.History()) != 0 {
		t.Fatal("nil plan reported activity")
	}
}

// TestKeepForStaysShort checks the truncation point is always inside the
// frame regardless of how the decision was parameterized.
func TestKeepForStaysShort(t *testing.T) {
	cases := []struct {
		d    Decision
		n    int
		want int
	}{
		{Decision{KeepBytes: 4}, 10, 4},
		{Decision{KeepBytes: 10}, 10, 9},
		{Decision{KeepBytes: 99}, 10, 9},
		{Decision{KeepFrac: 0.5}, 10, 5},
		{Decision{}, 10, 5},
		{Decision{}, 1, 0},
		{Decision{}, 0, 0},
		{Decision{KeepFrac: 1.5}, 8, 4},
	}
	for _, c := range cases {
		if got := c.d.KeepFor(c.n); got != c.want {
			t.Errorf("KeepFor(%d) with %+v = %d, want %d", c.n, c.d, got, c.want)
		}
	}
}
