package faults

import "time"

// Migration dialogue operation indices, as counted by a Plan attached to
// the source daemon's migration connection. The source drives a strictly
// ordered dialogue (see internal/rcuda.streamSession): a session-restore
// hello, a begin/ack, a run of unacked chunk frames, and a commit/ack.
// Pinning injections to these indices lets a chaos test kill the transfer
// at any exact protocol phase boundary and replay it deterministically.
const (
	// MigrateOpHello is the Send of the SessionRestoreRequest.
	MigrateOpHello = 0
	// MigrateOpHelloAck is the Recv of the SessionRestoreResponse.
	MigrateOpHelloAck = 1
	// MigrateOpBegin is the Send of the MigrateBeginRequest.
	MigrateOpBegin = 2
	// MigrateOpBeginAck is the Recv of the MigrateBeginResponse.
	MigrateOpBeginAck = 3
	// MigrateOpFirstChunk is the Send of the first checkpoint chunk.
	MigrateOpFirstChunk = 4
)

// MigrateOpChunk returns the operation index of the Send of checkpoint
// chunk i (zero-based).
func MigrateOpChunk(i int) int { return MigrateOpFirstChunk + i }

// MigrateOpCommit returns the operation index of the Send of the
// MigrateCommitRequest for a transfer of chunks chunk frames.
func MigrateOpCommit(chunks int) int { return MigrateOpFirstChunk + chunks }

// MigrateOpCommitAck returns the operation index of the Recv of the
// MigrateCommitResponse for a transfer of chunks chunk frames.
func MigrateOpCommitAck(chunks int) int { return MigrateOpCommit(chunks) + 1 }

// MigrateOps returns the total operation count of a clean migration
// dialogue carrying chunks chunk frames — handy for sweeping a reset
// across every phase boundary.
func MigrateOps(chunks int) int { return MigrateOpCommitAck(chunks) + 1 }

// MigrateDieAfterBegin builds a scripted plan that tears the migration
// connection down right after the destination acknowledged the begin —
// the source dies with the transfer promised but no payload delivered.
func MigrateDieAfterBegin() *Plan {
	return Script(Injection{Op: MigrateOpFirstChunk, Dir: DirSend, Decision: Decision{Kind: KindReset}})
}

// MigrateTruncateChunk builds a scripted plan that cuts checkpoint chunk
// i (zero-based) short on the wire, tearing the connection down with the
// destination holding a torn partial checkpoint.
func MigrateTruncateChunk(i int) *Plan {
	return Script(Injection{Op: MigrateOpChunk(i), Dir: DirSend, Decision: Decision{Kind: KindTruncate}})
}

// MigrateStallBeforeCommit builds a scripted plan that stalls the commit
// frame of a transfer carrying chunks chunk frames: every byte of the
// checkpoint arrived, but the destination never hears the digest and must
// not materialize the session.
func MigrateStallBeforeCommit(chunks int, delay time.Duration) *Plan {
	return Script(Injection{
		Op:       MigrateOpCommit(chunks),
		Dir:      DirSend,
		Decision: Decision{Kind: KindStall, Delay: delay},
	})
}

// MigrateResetAt builds a scripted plan that resets the migration
// connection at exactly operation op — combined with MigrateOps, a chaos
// test can sweep a source-daemon death across every phase boundary of the
// dialogue.
func MigrateResetAt(op int) *Plan {
	return Script(Injection{Op: op, Dir: DirAny, Decision: Decision{Kind: KindReset}})
}
