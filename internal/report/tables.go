package report

import (
	"fmt"
	"strings"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
	"rcuda/internal/perfmodel"
	"rcuda/internal/protocol"
)

// TableI renders the breakdown of the remote API messages, derived from the
// protocol encoders.
func TableI() string {
	var rows [][]string
	for _, b := range protocol.TableI() {
		for i, f := range b.Fields {
			op := ""
			if i == 0 {
				op = b.Operation
			}
			rows = append(rows, []string{op, f.Name, fmtFieldSize(f.Send), fmtFieldSize(f.Receive)})
		}
		send, sendVar, recv, recvVar := b.Totals()
		rows = append(rows, []string{"", "Total", fmtTotal(send, sendVar), fmtTotal(recv, recvVar)})
		rows = append(rows, []string{"", "", "", ""})
	}
	return "Table I — Breakdown of some remote API messages (bytes)\n\n" +
		tabulate([]string{"Operation", "Field", "Send", "Receive"}, rows)
}

func fmtFieldSize(n int) string {
	switch {
	case n == 0:
		return ""
	case n == protocol.Variable:
		return "x"
	default:
		return fmt.Sprint(n)
	}
}

func fmtTotal(n int, variable bool) string {
	if variable {
		return fmt.Sprintf("x+%d", n)
	}
	return fmt.Sprint(n)
}

// symbolicSizes returns the paper's symbolic send/receive size formulas for
// a Table II row (m is the matrix dimension, n the FFT batch).
func symbolicSizes(cs calib.CaseStudy, op protocol.Op) (send, recv string) {
	payload := "4m²"
	if cs == calib.FFT {
		payload = "4096n"
	}
	switch op {
	case protocol.OpInit:
		return "x+4", "12"
	case protocol.OpMalloc:
		return "8", "8"
	case protocol.OpMemcpyToDevice:
		return payload + "+20", "4"
	case protocol.OpMemcpyToHost:
		return "20", payload + "+4"
	case protocol.OpLaunch:
		return "x+44", "4"
	case protocol.OpFree:
		return "8", "4"
	default:
		return "", ""
	}
}

// TableII renders the estimated transfer times of the remote API calls of
// both case studies on the testbed networks, with the paper's symbolic
// size formulas and their evaluation at the given sizes.
func TableII(mmSize, fftBatch int) string {
	ge, ib := netsim.GigaE(), netsim.IB40G()
	var rows [][]string
	add := func(cs calib.CaseStudy, size int) {
		geRows := perfmodel.TableII(cs, size, ge)
		ibRows := perfmodel.TableII(cs, size, ib)
		for i, r := range geRows {
			label := r.Op.String()
			if r.Count > 1 {
				label = fmt.Sprintf("%s (x%d)", label, r.Count)
			}
			first := ""
			if i == 0 {
				first = fmt.Sprintf("%s (size %d)", cs, size)
			}
			symSend, symRecv := symbolicSizes(cs, r.Op)
			rows = append(rows, []string{
				first, label,
				fmt.Sprintf("%s = %d", symSend, r.SendBytes),
				fmt.Sprintf("%s = %d", symRecv, r.RecvBytes),
				fmtUS(r.SendTime), fmtUS(r.RecvTime),
				fmtUS(ibRows[i].SendTime), fmtUS(ibRows[i].RecvTime),
			})
		}
		sb, rb, gst, grt := perfmodel.Totals(geRows)
		_, _, ist, irt := perfmodel.Totals(ibRows)
		rows = append(rows, []string{"", "Total",
			fmt.Sprint(sb), fmt.Sprint(rb), fmtUS(gst), fmtUS(grt), fmtUS(ist), fmtUS(irt)})
		rows = append(rows, []string{"", "", "", "", "", "", "", ""})
	}
	add(calib.MM, mmSize)
	add(calib.FFT, fftBatch)
	return "Table II — Estimated transfer times for the remote API calls\n\n" +
		tabulate([]string{"Case study", "Operation", "Send (B)", "Recv (B)",
			"GigaE send (µs)", "GigaE recv (µs)", "40GI send (µs)", "40GI recv (µs)"}, rows)
}

func fmtUS(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond))
}

// TableIII renders the estimated per-copy transfer times on the testbed
// networks across the paper's problem sizes.
func TableIII() string {
	return "Table III — Estimated transfer times (ms) for each memory copy on the testbed networks\n\n" +
		transferTable([]*netsim.Link{netsim.GigaE(), netsim.IB40G()})
}

// TableV renders the same per-copy estimates on the five target networks.
func TableV() string {
	return "Table V — Estimated transfer times (ms) for each memory copy on the target networks\n\n" +
		transferTable(netsim.Targets())
}

func transferTable(links []*netsim.Link) string {
	header := []string{"Case", "Size", "Data (MB)"}
	for _, l := range links {
		header = append(header, l.Name())
	}
	var rows [][]string
	for _, cs := range []calib.CaseStudy{calib.MM, calib.FFT} {
		for i, size := range calib.Sizes(cs) {
			label := ""
			if i == 0 {
				label = cs.String()
			}
			row := []string{label, fmt.Sprint(size),
				fmt.Sprintf("%.0f", netsim.BytesToMiB(calib.CopyBytes(cs, size)))}
			for _, l := range links {
				row = append(row, fmt.Sprintf("%.1f",
					perfmodel.TransferTime(l, cs, size).Seconds()*1e3))
			}
			rows = append(rows, row)
		}
		rows = append(rows, make([]string, len(header)))
	}
	return tabulate(header, rows)
}

// TableIV runs the full simulated measurement campaign on both testbed
// networks, builds both estimation models, cross-validates them, and
// renders the result with the paper's published error rates alongside.
func (c Config) TableIV() (string, error) {
	var sb strings.Builder
	sb.WriteString("Table IV — Cross-validation of both estimation models (MM in s, FFT in ms)\n")
	ge, ib := netsim.GigaE(), netsim.IB40G()
	for _, cs := range []calib.CaseStudy{calib.MM, calib.FFT} {
		geMeas, err := c.measureSeries(cs, ge, 1)
		if err != nil {
			return "", err
		}
		ibMeas, err := c.measureSeries(cs, ib, 2)
		if err != nil {
			return "", err
		}
		fwd, err := perfmodel.CrossValidate(cs, ge, ib, geMeas, ibMeas)
		if err != nil {
			return "", err
		}
		rev, err := perfmodel.CrossValidate(cs, ib, ge, ibMeas, geMeas)
		if err != nil {
			return "", err
		}
		header := []string{"Size",
			"GigaE meas", "Fixed", "Est 40GI", "Err %", "paper Err %",
			"40GI meas", "Fixed", "Est GigaE", "Err %", "paper Err %"}
		var rows [][]string
		for i := range fwd {
			f, r := fwd[i], rev[i]
			pf, _ := calib.PaperCrossError(cs, "GigaE", f.Size)
			pr, _ := calib.PaperCrossError(cs, "40GI", f.Size)
			rows = append(rows, []string{
				fmt.Sprint(f.Size),
				fmtPaperUnit(cs, f.MeasuredSource), fmtPaperUnit(cs, f.Fixed),
				fmtPaperUnit(cs, f.Estimated),
				fmt.Sprintf("%.2f", f.RelativeErrorPc), fmt.Sprintf("%.2f", pf),
				fmtPaperUnit(cs, r.MeasuredSource), fmtPaperUnit(cs, r.Fixed),
				fmtPaperUnit(cs, r.Estimated),
				fmt.Sprintf("%.2f", r.RelativeErrorPc), fmt.Sprintf("%.2f", pr),
			})
		}
		fmt.Fprintf(&sb, "\n%s (times in %s)\n", cs, unitName(cs))
		sb.WriteString(tabulate(header, rows))
	}
	return sb.String(), nil
}

// TableVI runs the campaign, measures the CPU and local-GPU baselines,
// builds both models, and renders measured and estimated execution times
// across all seven networks.
func (c Config) TableVI() (string, error) {
	var sb strings.Builder
	sb.WriteString("Table VI — Measured vs. estimated execution times over several networks (MM in s, FFT in ms)\n")
	data, err := c.TableVIData()
	if err != nil {
		return "", err
	}
	for _, cs := range []calib.CaseStudy{calib.MM, calib.FFT} {
		d := data[cs]
		header := []string{"Size", "CPU", "GPU", "GigaE", "40GI"}
		for _, n := range calib.TargetNetworks() {
			header = append(header, "GigaE->"+n)
		}
		for _, n := range calib.TargetNetworks() {
			header = append(header, "40GI->"+n)
		}
		var rows [][]string
		for _, size := range calib.Sizes(cs) {
			row := []string{fmt.Sprint(size),
				fmtPaperUnit(cs, d.CPU[size]), fmtPaperUnit(cs, d.GPU[size]),
				fmtPaperUnit(cs, d.MeasuredGigaE[size]), fmtPaperUnit(cs, d.Measured40GI[size])}
			for _, n := range calib.TargetNetworks() {
				row = append(row, fmtPaperUnit(cs, d.EstGigaEModel[n][size]))
			}
			for _, n := range calib.TargetNetworks() {
				row = append(row, fmtPaperUnit(cs, d.Est40GIModel[n][size]))
			}
			rows = append(rows, row)
		}
		fmt.Fprintf(&sb, "\n%s (times in %s)\n", cs, unitName(cs))
		sb.WriteString(tabulate(header, rows))
	}
	return sb.String(), nil
}

// TableVIResult holds the full measured/estimated grid for one case study.
type TableVIResult struct {
	CPU, GPU                    map[int]time.Duration
	MeasuredGigaE, Measured40GI map[int]time.Duration
	// EstGigaEModel and Est40GIModel map target network name → size →
	// estimated execution time.
	EstGigaEModel, Est40GIModel map[string]map[int]time.Duration
}

// TableVIData produces the raw data behind Table VI and Figures 5/6.
func (c Config) TableVIData() (map[calib.CaseStudy]TableVIResult, error) {
	out := make(map[calib.CaseStudy]TableVIResult)
	ge, ib := netsim.GigaE(), netsim.IB40G()
	for _, cs := range []calib.CaseStudy{calib.MM, calib.FFT} {
		res := TableVIResult{
			CPU: make(map[int]time.Duration), GPU: make(map[int]time.Duration),
			EstGigaEModel: make(map[string]map[int]time.Duration),
			Est40GIModel:  make(map[string]map[int]time.Duration),
		}
		var err error
		if res.MeasuredGigaE, err = c.measureSeries(cs, ge, 1); err != nil {
			return nil, err
		}
		if res.Measured40GI, err = c.measureSeries(cs, ib, 2); err != nil {
			return nil, err
		}
		cpuSeries, err := workloadSeries(cs, c, 3, false)
		if err != nil {
			return nil, err
		}
		res.CPU = cpuSeries
		gpuSeries, err := workloadSeries(cs, c, 4, true)
		if err != nil {
			return nil, err
		}
		res.GPU = gpuSeries

		geModel, err := perfmodel.Build(cs, ge, res.MeasuredGigaE)
		if err != nil {
			return nil, err
		}
		ibModel, err := perfmodel.Build(cs, ib, res.Measured40GI)
		if err != nil {
			return nil, err
		}
		for _, target := range netsim.Targets() {
			gm := make(map[int]time.Duration)
			im := make(map[int]time.Duration)
			for _, size := range calib.Sizes(cs) {
				if gm[size], err = geModel.Estimate(target, size); err != nil {
					return nil, err
				}
				if im[size], err = ibModel.Estimate(target, size); err != nil {
					return nil, err
				}
			}
			res.EstGigaEModel[target.Name()] = gm
			res.Est40GIModel[target.Name()] = im
		}
		out[cs] = res
	}
	return out, nil
}
