package report

import (
	"fmt"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
	"rcuda/internal/workload"
)

// Figure7 is an extension beyond the paper: the FFT case study with the
// batch split into chunks and double-buffered on two device streams
// (asynchronous transfers are the paper's declared future work). The
// figure reports, per network and batch size, the synchronous execution
// time, the pipelined time, and the relative gain — quantifying how much
// of the remoting overhead server-side overlap can hide on each
// interconnect.
func (c Config) Figure7(chunks int) (string, error) {
	if chunks < 2 {
		chunks = 8
	}
	var out string
	out += fmt.Sprintf("Figure 7 (extension) — Pipelined remote FFT, %d chunks, 2 streams (times in ms)\n", chunks)
	header := []string{"batch"}
	for _, l := range netsim.All() {
		header = append(header, l.Name()+" sync", l.Name()+" piped", "gain %")
	}
	var rows [][]string
	for _, size := range calib.Sizes(calib.FFT) {
		if size%chunks != 0 {
			continue
		}
		row := []string{fmt.Sprint(size)}
		for _, link := range netsim.All() {
			sync, err := workload.Run(calib.FFT, size, workload.Remote,
				workload.Options{Link: link, Noise: c.noise(31)})
			if err != nil {
				return "", err
			}
			piped, err := workload.RunPipelined(size, chunks,
				workload.Options{Link: link, Noise: c.noise(32)})
			if err != nil {
				return "", err
			}
			gain := (1 - float64(piped.Total)/float64(sync.Total)) * 100
			row = append(row,
				fmtMS(sync.Total), fmtMS(piped.Total), fmt.Sprintf("%.1f", gain))
		}
		rows = append(rows, row)
	}
	return out + csvLines(header, rows), nil
}

func fmtMS(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds()*1e3)
}
