package report

import (
	"fmt"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
	"rcuda/internal/perfmodel"
)

// Figure8 is a second extension figure: a continuous bandwidth sensitivity
// sweep. For one problem size per case study it plots the estimated remote
// execution time against interconnect bandwidth (geometrically sampled),
// together with the local CPU baseline and the exact bandwidth floor where
// remoting starts to pay — generalizing Figures 5 and 6 from five discrete
// networks to the whole bandwidth axis.
func (c Config) Figure8(mmSize, fftBatch int, points int) (string, error) {
	if points < 2 {
		points = 24
	}
	ge := netsim.GigaE()
	var out string
	out += "Figure 8 (extension) — Remote execution time vs interconnect bandwidth\n"
	for _, sel := range []struct {
		cs   calib.CaseStudy
		size int
	}{{calib.MM, mmSize}, {calib.FFT, fftBatch}} {
		meas, err := c.measureSeries(sel.cs, ge, 41)
		if err != nil {
			return "", err
		}
		model, err := perfmodel.Build(sel.cs, ge, meas)
		if err != nil {
			return "", err
		}
		pts, err := perfmodel.BandwidthSweep(model, sel.size, 50, 8000, points)
		if err != nil {
			return "", err
		}
		out += fmt.Sprintf("\n%s size %d (times in %s):\nbandwidth_MBps,remote,cpu\n",
			sel.cs, sel.size, unitName(sel.cs))
		var rows [][]string
		for _, p := range pts {
			rows = append(rows, []string{
				fmt.Sprintf("%.0f", p.BandwidthMBps),
				fmtPaperUnit(sel.cs, p.Remote),
				fmtPaperUnit(sel.cs, p.CPU),
			})
		}
		out += csvLines(nil, rows)
		if bw, ok := perfmodel.MinimumBandwidth(model, sel.size); ok {
			out += fmt.Sprintf("bandwidth floor: %.0f MB/s\n", bw)
		} else {
			out += "bandwidth floor: none — not worth remoting at any speed\n"
		}
	}
	return out, nil
}
