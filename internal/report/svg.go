package report

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/contention"
	"rcuda/internal/netsim"
	"rcuda/internal/perfmodel"
	"rcuda/internal/plot"
	"rcuda/internal/workload"
)

// WriteSVGs renders every figure as an SVG file in dir and returns the
// written paths: the network characterizations (Figures 3-4), the
// execution-time series under both models (Figures 5-6), and the three
// extension figures (7-9).
func (c Config) WriteSVGs(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	write := func(name string, chart *plot.Chart) error {
		svg, err := chart.SVG(760, 460)
		if err != nil {
			return fmt.Errorf("render %s: %w", name, err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}

	// Figures 3 and 4: one-way latency vs payload, log-log.
	for i, link := range netsim.Testbed() {
		pp := &netsim.PingPong{Link: link, Noise: c.noise(51)}
		var sizes []int64
		sizes = append(sizes, smallSizes...)
		sizes = append(sizes, largeSizes...)
		series := plot.Series{Name: "measured one-way"}
		for _, sz := range sizes {
			series.X = append(series.X, float64(sz))
			series.Y = append(series.Y, float64(pp.OneWay(sz).Microseconds()))
		}
		chart := &plot.Chart{
			Title:  fmt.Sprintf("Figure %d — %s end-to-end latency", 3+i, link.Name()),
			XLabel: "payload (bytes)", YLabel: "one-way latency (µs)",
			LogX: true, LogY: true,
			Series: []plot.Series{plot.SortedByX(series)},
		}
		if err := write(fmt.Sprintf("figure%d.svg", 3+i), chart); err != nil {
			return nil, err
		}
	}

	// Figures 5 and 6: execution times per case study under each model.
	data, err := c.TableVIData()
	if err != nil {
		return nil, err
	}
	for figIdx, model := range []string{"GigaE", "40GI"} {
		for _, cs := range []calib.CaseStudy{calib.MM, calib.FFT} {
			d := data[cs]
			est := d.EstGigaEModel
			if model == "40GI" {
				est = d.Est40GIModel
			}
			mk := func(name string, series map[int]float64) plot.Series {
				s := plot.Series{Name: name}
				for _, size := range calib.Sizes(cs) {
					s.X = append(s.X, float64(size))
					s.Y = append(s.Y, series[size])
				}
				return s
			}
			toUnit := func(m map[int]time.Duration) map[int]float64 {
				out := make(map[int]float64, len(m))
				for k, v := range m {
					out[k] = v.Seconds()
					if cs == calib.FFT {
						out[k] *= 1e3
					}
				}
				return out
			}
			chart := &plot.Chart{
				Title: fmt.Sprintf("Figure %d — %s processing times (%s model)",
					5+figIdx, cs, model),
				XLabel: "problem size", YLabel: "time (" + unitName(cs) + ")",
				Series: []plot.Series{
					mk("CPU", toUnit(d.CPU)),
					mk("local GPU", toUnit(d.GPU)),
					mk("GigaE", toUnit(d.MeasuredGigaE)),
					mk("40GI", toUnit(d.Measured40GI)),
				},
			}
			for _, n := range calib.TargetNetworks() {
				chart.Series = append(chart.Series, mk(n, toUnit(est[n])))
			}
			name := fmt.Sprintf("figure%d-%s.svg", 5+figIdx, csSlug(cs))
			if err := write(name, chart); err != nil {
				return nil, err
			}
		}
	}

	// Figure 7: pipelined vs synchronous FFT on the testbed networks.
	f7 := &plot.Chart{
		Title:  "Figure 7 — Pipelined remote FFT (8 chunks, 2 streams)",
		XLabel: "batch", YLabel: "time (ms)",
	}
	for _, netName := range []string{"GigaE", "40GI"} {
		link, err := netsim.ByName(netName)
		if err != nil {
			return nil, err
		}
		sync := plot.Series{Name: netName + " sync"}
		piped := plot.Series{Name: netName + " piped"}
		for _, size := range calib.Sizes(calib.FFT) {
			if size%8 != 0 {
				continue
			}
			s, err := workload.Run(calib.FFT, size, workload.Remote, workload.Options{Link: link})
			if err != nil {
				return nil, err
			}
			p, err := workload.RunPipelined(size, 8, workload.Options{Link: link})
			if err != nil {
				return nil, err
			}
			sync.X = append(sync.X, float64(size))
			sync.Y = append(sync.Y, s.Total.Seconds()*1e3)
			piped.X = append(piped.X, float64(size))
			piped.Y = append(piped.Y, p.Total.Seconds()*1e3)
		}
		f7.Series = append(f7.Series, sync, piped)
	}
	if err := write("figure7.svg", f7); err != nil {
		return nil, err
	}

	// Figure 8: bandwidth sweeps per case study.
	ge := netsim.GigaE()
	for _, sel := range []struct {
		cs   calib.CaseStudy
		size int
	}{{calib.MM, 8192}, {calib.FFT, 8192}} {
		meas, err := c.measureSeries(sel.cs, ge, 52)
		if err != nil {
			return nil, err
		}
		model, err := perfmodel.Build(sel.cs, ge, meas)
		if err != nil {
			return nil, err
		}
		pts, err := perfmodel.BandwidthSweep(model, sel.size, 50, 8000, 24)
		if err != nil {
			return nil, err
		}
		remote := plot.Series{Name: "remote GPU"}
		cpu := plot.Series{Name: "local CPU"}
		for _, p := range pts {
			scale := 1.0
			if sel.cs == calib.FFT {
				scale = 1e3
			}
			remote.X = append(remote.X, p.BandwidthMBps)
			remote.Y = append(remote.Y, p.Remote.Seconds()*scale)
			cpu.X = append(cpu.X, p.BandwidthMBps)
			cpu.Y = append(cpu.Y, p.CPU.Seconds()*scale)
		}
		chart := &plot.Chart{
			Title: fmt.Sprintf("Figure 8 — %s size %d vs interconnect bandwidth",
				sel.cs, sel.size),
			XLabel: "one-way bandwidth (MB/s)", YLabel: "time (" + unitName(sel.cs) + ")",
			LogX:   true,
			Series: []plot.Series{remote, cpu},
		}
		if err := write(fmt.Sprintf("figure8-%s.svg", csSlug(sel.cs)), chart); err != nil {
			return nil, err
		}
	}

	// Figure 9: contention slowdown curves.
	f9 := &plot.Chart{
		Title:  "Figure 9 — Per-client slowdown sharing one GPU server",
		XLabel: "concurrent clients", YLabel: "mean slowdown (x)",
	}
	for _, sel := range []struct {
		cs  calib.CaseStudy
		net string
	}{{calib.MM, "GigaE"}, {calib.MM, "40GI"}, {calib.FFT, "GigaE"}, {calib.FFT, "40GI"}} {
		link, err := netsim.ByName(sel.net)
		if err != nil {
			return nil, err
		}
		results, err := contention.Sweep(contention.Params{CS: sel.cs, Size: 8192, Link: link}, 8)
		if err != nil {
			return nil, err
		}
		slow := contention.Slowdown(results)
		s := plot.Series{Name: fmt.Sprintf("%s/%s", sel.cs, sel.net)}
		for i, v := range slow {
			s.X = append(s.X, float64(i+1))
			s.Y = append(s.Y, v)
		}
		f9.Series = append(f9.Series, s)
	}
	if err := write("figure9.svg", f9); err != nil {
		return nil, err
	}
	return written, nil
}

// csSlug returns a filename-friendly case-study name.
func csSlug(cs calib.CaseStudy) string {
	if cs == calib.MM {
		return "mm"
	}
	return "fft"
}
