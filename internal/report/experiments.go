package report

import (
	"fmt"
	"math"
	"strings"
	"time"

	"rcuda/internal/broker"
	"rcuda/internal/calib"
	"rcuda/internal/contention"
	"rcuda/internal/faults"
	"rcuda/internal/gpu"
	"rcuda/internal/kernels"
	"rcuda/internal/loadgen"
	"rcuda/internal/netsim"
	"rcuda/internal/perfmodel"
	"rcuda/internal/protocol"
	"rcuda/internal/rcuda"
	"rcuda/internal/sched"
	"rcuda/internal/transport"
	"rcuda/internal/vclock"
	"rcuda/internal/workload"
)

// Experiments generates the EXPERIMENTS.md document: for every table and
// figure of the paper, the reproduction's numbers next to the published
// ones, with relative deltas. The document is fully regenerated from the
// simulation campaign, so it reflects whatever the code currently does.
func (c Config) Experiments() (string, error) {
	var sb strings.Builder
	sb.WriteString(`# EXPERIMENTS — paper vs. reproduction

Regenerate with ` + "`go run ./cmd/rcuda-repro -experiments`" + fmt.Sprintf(
		" (seed %d, %d repetitions, %.1f%% noise).\n\n", c.Seed, c.reps(), c.Sigma*100))
	sb.WriteString(`Absolute numbers come from a calibrated simulator (see DESIGN.md §2), so
"measured" columns track the paper by construction; the *reproduced results*
are the derived quantities — fixed times, cross-validation error rates, and
target-network projections — which the estimation-model code recomputes from
the simulated measurements exactly as the paper's method prescribes.

`)

	c.expTableI(&sb)
	if err := c.expFigures34(&sb); err != nil {
		return "", err
	}
	c.expTableII(&sb)
	c.expTablesIIIandV(&sb)
	data, err := c.TableVIData()
	if err != nil {
		return "", err
	}
	if err := c.expTableIV(&sb); err != nil {
		return "", err
	}
	c.expTableVI(&sb, data)
	c.expFigures56(&sb, data)
	if err := c.expExtensions(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func (c Config) expExtensions(sb *strings.Builder) error {
	sb.WriteString("## Extensions beyond the paper\n\n")
	// Pipelined FFT (Figure 7): report the overlap gain on the fastest
	// and slowest networks at one representative batch.
	gain := func(netName string) (float64, error) {
		link, err := netsim.ByName(netName)
		if err != nil {
			return 0, err
		}
		sync, err := workload.Run(calib.FFT, 8192, workload.Remote, workload.Options{Link: link})
		if err != nil {
			return 0, err
		}
		piped, err := workload.RunPipelined(8192, 8, workload.Options{Link: link})
		if err != nil {
			return 0, err
		}
		return (1 - float64(piped.Total)/float64(sync.Total)) * 100, nil
	}
	fast, err := gain("40GI")
	if err != nil {
		return err
	}
	slow, err := gain("GigaE")
	if err != nil {
		return err
	}
	fmt.Fprintf(sb, `- **Asynchronous pipelining (Figure 7, `+"`-figure 7`"+`)**: splitting the
  FFT batch into 8 double-buffered chunks hides %.1f%% of the remote
  execution time on 40GI, where the device engines are the bottleneck. On
  GigaE the same pipelining *loses* %.1f%%: each mid-size chunk pays the
  TCP-window excess that one large transfer amortizes, so chunked
  asynchronous transfers only pay off once the interconnect is fast and
  clean — a concrete answer to the paper's deferred future work.
- **Cluster sizing (examples/clusterplan, BenchmarkClusterSweep)**: list
  scheduling of synthetic job traces over the calibrated profiles answers
  "how many GPUs does the cluster need"; at the light utilization the
  paper's premise assumes, 1-2 shared GPUs per 8-16 nodes match the fully
  equipped cluster's makespan within 10%%.
`, fast, -slow)

	// Contention (Figure 9): quantify the per-client slowdown of sharing.
	shared, err := contention.Run(contention.Params{
		CS: calib.MM, Size: 8192, Clients: 4, Link: netsim.IB40G(),
	})
	if err != nil {
		return err
	}
	lone, err := contention.Run(contention.Params{
		CS: calib.MM, Size: 8192, Clients: 1, Link: netsim.IB40G(),
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(sb, `- **Multi-client contention (Figure 9, `+"`-figure 9`"+`)**: an event-level
  simulation (internal/des) of clients sharing one GPU server's link and
  device. Four MM clients on 40GI run %.1fx slower each than a lone client
  (GPU-bound, %.0f%% device utilization); on GigaE the wire saturates first
  for the FFT — the paper's last future-work item, quantified.

`, shared.PerClient[3].Seconds()/lone.PerClient[0].Seconds(), shared.GPUUtilization*100)

	// Chunked memcpy pipeline (BenchmarkMemcpyPipeline): run one large copy
	// through the real middleware over the simulated links, with and without
	// the chunked protocol, and report the modeled times.
	fastLegacy, fastChunked, err := chunkedMemcpyTimes(netsim.IB40G())
	if err != nil {
		return err
	}
	slowLegacy, slowChunked, err := chunkedMemcpyTimes(netsim.GigaE())
	if err != nil {
		return err
	}
	fmt.Fprintf(sb, `- **Chunked memcpy pipeline (BenchmarkMemcpyPipeline)**: a cudaMemcpy above
  a threshold can stream as ~1 MiB chunks so the server overlaps receiving
  chunk k+1 with pushing chunk k across PCIe. A 64 MiB host-to-device copy
  on 40GI drops from %.1f to %.1f sim-ms (%.0f%% faster, approaching
  max(wire, PCIe) instead of their sum); on GigaE the same copy *rises*
  from %.0f to %.0f sim-ms because every chunk pays the TCP-window excess
  one large frame amortizes — so chunking is opt-in
  (rcuda.WithChunkedTransfers) and the default wire format is unchanged.
  On a real socket the pooled zero-copy framing that carries the chunks
  also cuts the legacy path's allocations per round trip by ~74%%.

`, simMS(fastLegacy), simMS(fastChunked),
		(1-fastChunked.Seconds()/fastLegacy.Seconds())*100,
		simMS(slowLegacy), simMS(slowChunked))

	// Fault injection and retry (chaos suite): report the fault-free cost
	// of the retry layer against its <1% acceptance target. The modeled
	// sim-time comparison is deterministic, keeping this document
	// byte-stable across regenerations; the wall-clock CPU-side cost lives
	// in BenchmarkMemcpyPipeline's chunked vs chunked+retry modes.
	basePer, retryPer, err := retrySimOverhead()
	if err != nil {
		return err
	}
	fmt.Fprintf(sb, `- **Fault injection and session recovery (`+"`make chaos` / `make soak`"+`)**: a
  deterministic fault layer (internal/faults, transport.FaultyConn) injects
  connection resets, truncated frames, stalls, partial writes and latency
  spikes at scripted or seeded operation indices, and the client heals
  through them: idempotent calls retry with exponential backoff while the
  session reattaches to its durable server state, so the MM and FFT
  workloads finish bit-exact through ~8%% fault rates (50-seed chaos sweep
  under -race; 10k-op soak at ~1%%). Fault-free cost: the durable session
  adds one 4+12-byte SessionHello exchange at open and zero wire traffic
  per subsequent call — a 64 MiB chunked copy on 40GI models %.1f sim-ms
  plain vs %.1f sim-ms retrying (%+.2f%%) — and the CPU-side bookkeeping
  sits below benchmark noise on a loopback socket (tcp/chunked vs
  tcp/chunked+retry in BenchmarkMemcpyPipeline; <1%% target).

`, simMS(basePer), simMS(retryPer),
		(retryPer.Seconds()/basePer.Seconds()-1)*100)

	// Live pool broker: place a mixed MM/FFT batch on three in-process
	// daemons through the real wire protocol and compare the resulting
	// makespan with the cluster simulator's list-scheduling prediction.
	live, err := brokerLiveResult()
	if err != nil {
		return err
	}
	counts := make([]int, 3)
	for _, p := range live.Placements {
		counts[p]++
	}
	fmt.Fprintf(sb, `- **Live GPU pool broker (internal/broker, `+"`make pool`"+`)**: a client-side
  broker federates several rcudad servers behind one Runtime — health
  probes over a StatsQuery protocol op feed least-loaded, round-robin, or
  network-aware placement, busy servers spill to the next-best endpoint,
  and a session lost mid-job is replayed on another server. Placing the
  sizing study's job mix (%d MM/FFT jobs) on three live in-process daemons
  under least-loaded yields a %0.3f ms makespan against the cluster
  simulator's %0.3f ms prediction (%+.2f%%, asserted under 5%% in
  TestLiveMakespanMatchesPrediction; placements %v across the servers) —
  the live system lands on the offline model's schedule, with the residual
  being real wire framing versus the analytic transfer estimate. Killing
  one of three servers mid-batch leaves every job's result bit-identical
  to a local run, with each extra invocation accounted as exactly one
  failover (TestChaosKillServerMidBatch, under -race).

`, len(live.Placements), simMS(live.Makespan), simMS(live.Predicted),
		live.Delta()*100, counts)

	// API-call batching + query caching: run the latency-bound DNN
	// inference loop batched and unbatched over both testbed links. The
	// sim clock makes the numbers deterministic, and bit-exactness across
	// modes is re-verified on every regeneration.
	inf, err := batchedInferenceResults()
	if err != nil {
		return err
	}
	fmt.Fprintf(sb, `- **API-call batching + query caching (rcuda.WithBatching, `+"`make bench-batch`"+`)**:
  fire-and-forget calls (async copies, kernel launches, event records,
  memsets) coalesce into one wire frame that flushes at the next
  synchronizing call, and immutable device-query replies are cached for
  the lifetime of the connection. A %d-layer dense inference loop serving
  %d requests — %d round trips per request unbatched — runs %.2fx faster
  on GigaE (%.1f → %.1f sim-ms) and %.2fx on 40GI (%.1f → %.1f sim-ms),
  with bit-identical outputs in all four cells (digest %016x) and the
  analytic schedule in internal/perfmodel pinning the wire exactly
  (TestInferenceModelCrossValidation: 0.00%% error both directions). The
  frame byte cap defaults to %d KiB because a frame past GigaE's
  small-message regime (~21 KB) pays the same TCP-window excess that
  bites chunking and pipelining above — batching must stay small to win.

`, inf.layers, inf.requests, inf.unbatchedPerReq,
		inf.geUnbatched.Seconds()/inf.geBatched.Seconds(),
		simMS(inf.geUnbatched), simMS(inf.geBatched),
		inf.ibUnbatched.Seconds()/inf.ibBatched.Seconds(),
		simMS(inf.ibUnbatched), simMS(inf.ibBatched),
		inf.digest, rcuda.DefaultBatchBytes>>10)

	// Scale harness + elastic autoscaling: a virtual-clock run through the
	// broker's real Placer with chaos kills, deterministic from its seed.
	scale, err := loadgen.Run(loadgen.Config{
		Seed:     12,
		Sessions: 50_000,
		Arrival:  loadgen.BurstyOnOff,
		Rate:     25_000,
		Classes: []loadgen.Class{
			{Name: "train", Weight: 1, HoldMean: 40 * time.Millisecond, Durable: true},
			{Name: "infer", Weight: 3, HoldMean: 8 * time.Millisecond, Durable: false},
		},
		InitialDaemons: 4,
		DaemonCapacity: 64,
		Autoscale: &broker.AutoscalerConfig{
			Min: 4, Max: 48, DaemonCapacity: 64, Cooldown: 250 * time.Millisecond,
		},
		FaultPlan: faults.Seeded(13, faults.Config{ResetRate: 0.003, StallRate: 0.01}),
	})
	if err != nil {
		return err
	}
	if scale.LostDurable != 0 {
		return fmt.Errorf("report: scale run lost %d durable sessions", scale.LostDurable)
	}
	fmt.Fprintf(sb, `- **Million-session scale harness + elastic autoscaling (internal/loadgen,
  `+"`make bench-scale`"+`)**: a goroutine-free event loop (des.EventLoop) drives
  simulated client sessions through the broker's real Placer — the same
  placement, spill, stampede-guard, and failover code the live pool runs —
  with seeded Poisson or bursty ON/OFF arrivals, while broker.Autoscaler
  (target-occupancy control with hysteresis and cooldown) grows and
  shrinks the simulated daemon fleet through a ScaleDriver that only
  retires empty daemons. %d bursty sessions with seeded daemon faults
  place at %.0f sessions/s of virtual time (p99 queue wait %.1f ms), the
  fleet tracks the bursts %d→%d daemons and hands them back (%d
  retirements), and the %d injected faults (crashes and stalls) cost %d
  failovers and %d lost best-effort sessions, every one accounted —
  zero durable sessions lost, re-asserted on every regeneration and at
  10^5–10^6 scale in CI and the nightly run.
  A million-session run completes in ~2 s of wall time and is
  byte-reproducible from its seed (BENCH_loadscale.json).

`, scale.Sessions, scale.PlacedPerSec, float64(scale.QueueWaitP99.Microseconds())/1000,
		minDaemons(scale), scale.PeakDaemons, scale.Pool.Retirements,
		scale.Faults, scale.Pool.Failovers, scale.LostNonDurable)

	// Per-device WFQ scheduler: the starvation scenario re-run live (the
	// same mix BENCH_sched.json commits), so the document can only print
	// numbers the run just verified.
	fifoRes, wfqRes := starvationRuns()
	fifoP99 := classWaitP99(fifoRes, sched.Realtime)
	wfqP99 := classWaitP99(wfqRes, sched.Realtime)
	if wfqP99 <= 0 || fifoP99 < 5*wfqP99 {
		return fmt.Errorf("report: starvation scenario improvement collapsed (fifo %v, wfq %v)", fifoP99, wfqP99)
	}
	fmt.Fprintf(sb, `- **Per-device WFQ scheduler with priority classes (internal/sched,
  `+"`make bench-sched`"+`)**: the daemon's per-device dispatch runs through a
  virtual-time weighted-fair-queueing queue with realtime > batch >
  besteffort classes, preempting only at op boundaries so bit-exactness
  is untouched. In the starvation scenario — one batch tenant keeping a
  64-deep async pipeline on the device while 8 realtime tenants fire
  sporadic small launches — FIFO makes every realtime op queue behind
  the whole pipeline (p99 wait %.1f ms); WFQ's class weights lift the
  realtime class past the backlog at the next boundary (p99 %.2f ms), a
  %.0fx improvement at %.2f%% aggregate-throughput difference (%d vs %d
  ops served). Per-class queue waits surface in StatsSnapshot and the
  stats probe's class block, which the broker's class-aware policy ranks
  for placement; deterministic from its seed (BENCH_sched.json).

`, float64(fifoP99.Microseconds())/1000, float64(wfqP99.Microseconds())/1000,
		float64(fifoP99)/float64(wfqP99),
		throughputDeltaPct(fifoRes, wfqRes), fifoRes.TotalServed, wfqRes.TotalServed)
	return nil
}

// starvationRuns executes the headline scheduler scenario under both
// policies: one saturating batch pipeline vs eight sporadic realtime
// tenants on one device.
func starvationRuns() (fifo, wfq *sched.SimResult) {
	mix := func() []sched.TenantSpec {
		ts := []sched.TenantSpec{{
			Name: "bulk", Class: sched.Batch, Weight: 1,
			OpCost: 500 * time.Microsecond, Backlog: 64,
		}}
		for i := 0; i < 8; i++ {
			ts = append(ts, sched.TenantSpec{
				Name: fmt.Sprintf("rt-%d", i), Class: sched.Realtime, Weight: 1,
				OpCost: 50 * time.Microsecond, MeanGap: 2 * time.Millisecond,
			})
		}
		return ts
	}
	base := sched.SimConfig{Seed: 7, Duration: 5 * time.Second}
	fifoCfg, wfqCfg := base, base
	fifoCfg.Policy, fifoCfg.Tenants = sched.FIFO, mix()
	wfqCfg.Policy, wfqCfg.Tenants = sched.WFQ, mix()
	return sched.Simulate(fifoCfg), sched.Simulate(wfqCfg)
}

// classWaitP99 extracts one class's p99 queue wait from a sim run.
func classWaitP99(r *sched.SimResult, class sched.Class) time.Duration {
	for _, c := range r.Classes {
		if c.Class == class {
			return c.WaitP99
		}
	}
	return 0
}

// throughputDeltaPct is |wfq-fifo|/fifo over total served ops, percent.
func throughputDeltaPct(fifo, wfq *sched.SimResult) float64 {
	d := float64(int64(wfq.TotalServed) - int64(fifo.TotalServed))
	if d < 0 {
		d = -d
	}
	return 100 * d / float64(fifo.TotalServed)
}

// minDaemons is the smallest fleet size the trajectory visited.
func minDaemons(r *loadgen.Result) int {
	if len(r.Trajectory) == 0 {
		return 0
	}
	min := r.Trajectory[0].Daemons
	for _, s := range r.Trajectory {
		if s.Daemons < min {
			min = s.Daemons
		}
	}
	return min
}

// inferenceSummary carries the deterministic batched-vs-unbatched numbers
// of the DNN inference workload for the extensions section.
type inferenceSummary struct {
	layers, requests, unbatchedPerReq int
	geUnbatched, geBatched            time.Duration
	ibUnbatched, ibBatched            time.Duration
	digest                            uint64
}

// batchedInferenceResults runs the inference loop in all four
// (network, mode) cells and checks the outputs digest-identical, so the
// generated document can only print numbers the run just verified.
func batchedInferenceResults() (inferenceSummary, error) {
	s := inferenceSummary{
		layers:   workload.DefaultInferenceLayers,
		requests: workload.DefaultInferenceRequests,
	}
	// Unbatched round trips per request: one properties poll, one async
	// input copy, one launch per layer, event record + synchronize, the
	// default single event query, and the result download.
	s.unbatchedPerReq = 1 + 1 + s.layers + 1 + 1 + workload.DefaultInferencePolls + 1
	cells := []struct {
		netName string
		batched bool
		out     *time.Duration
	}{
		{"GigaE", false, &s.geUnbatched}, {"GigaE", true, &s.geBatched},
		{"40GI", false, &s.ibUnbatched}, {"40GI", true, &s.ibBatched},
	}
	for i, cell := range cells {
		link, err := netsim.ByName(cell.netName)
		if err != nil {
			return s, err
		}
		rep, err := workload.RunInference(workload.InferenceOptions{Link: link, Batched: cell.batched})
		if err != nil {
			return s, err
		}
		if !rep.Verified {
			return s, fmt.Errorf("inference %s batched=%v: not bit-exact", cell.netName, cell.batched)
		}
		if i == 0 {
			s.digest = rep.Digest
		} else if rep.Digest != s.digest {
			return s, fmt.Errorf("inference %s batched=%v: digest %016x differs from %016x",
				cell.netName, cell.batched, rep.Digest, s.digest)
		}
		*cell.out = rep.Elapsed
	}
	return s, nil
}

// brokerLiveResult runs the live-vs-predicted broker experiment on the same
// deterministic job mix the broker's acceptance test uses, so the numbers
// here are the tested ones.
func brokerLiveResult() (broker.LiveResult, error) {
	sizes := []struct {
		cs   calib.CaseStudy
		size int
	}{
		{calib.MM, 128}, {calib.FFT, 16}, {calib.MM, 64},
		{calib.FFT, 32}, {calib.MM, 128}, {calib.MM, 48},
		{calib.FFT, 16}, {calib.MM, 96}, {calib.FFT, 8},
	}
	jobs := make([]broker.SimJob, len(sizes))
	for i, s := range sizes {
		jobs[i] = broker.SimJob{ID: i, CS: s.cs, Size: s.size}
	}
	return broker.SimulateLive(netsim.IB40G(), 3, jobs, broker.LeastLoaded)
}

// retrySimOverhead reruns chunkedMemcpyTimes' 64 MiB copy on 40GI with the
// retry/reconnect layer enabled and returns both modeled times. On a
// fault-free connection the retry layer adds no wire traffic after the
// one-off session hello (which precedes the measured window), so the two
// times must come out identical — the comparison pins that claim in the
// generated document deterministically.
func retrySimOverhead() (plain, retrying time.Duration, err error) {
	mod, err := kernels.ModuleFor(calib.MM)
	if err != nil {
		return 0, 0, err
	}
	img, err := mod.Binary()
	if err != nil {
		return 0, 0, err
	}
	link := netsim.IB40G()
	const size = 64 << 20
	run := func(retry bool) (time.Duration, error) {
		clk := vclock.NewSim()
		dev := gpu.New(gpu.Config{Clock: clk})
		srv := rcuda.NewServer(dev)
		cliEnd, srvEnd := transport.Pipe(link, clk, nil)
		go func() { _ = srv.ServeConn(srvEnd) }()
		opts := []rcuda.ClientOption{rcuda.WithChunkedTransfers(1, protocol.DefaultChunkSize)}
		if retry {
			opts = append(opts,
				rcuda.WithRetry(4, 200*time.Microsecond),
				rcuda.WithReconnect(func() (transport.Conn, error) {
					c2, s2 := transport.Pipe(link, clk, nil)
					go func() { _ = srv.ServeConn(s2) }()
					return c2, nil
				}))
		}
		client, err := rcuda.Open(cliEnd, img, opts...)
		if err != nil {
			return 0, err
		}
		defer client.Close()
		ptr, err := client.Malloc(size)
		if err != nil {
			return 0, err
		}
		start := clk.Now()
		if err := client.MemcpyToDevice(ptr, make([]byte, size)); err != nil {
			return 0, err
		}
		return clk.Now() - start, nil
	}
	if plain, err = run(false); err != nil {
		return 0, 0, err
	}
	if retrying, err = run(true); err != nil {
		return 0, 0, err
	}
	return plain, retrying, nil
}

func simMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// chunkedMemcpyTimes measures one 64 MiB MemcpyToDevice through the full
// client/server middleware over the given simulated link, first with the
// paper's single-frame protocol and then with chunked transfers enabled.
// The setup mirrors BenchmarkMemcpyPipeline's sim sub-benchmarks.
func chunkedMemcpyTimes(link *netsim.Link) (legacy, chunked time.Duration, err error) {
	mod, err := kernels.ModuleFor(calib.MM)
	if err != nil {
		return 0, 0, err
	}
	img, err := mod.Binary()
	if err != nil {
		return 0, 0, err
	}
	const size = 64 << 20
	run := func(opts ...rcuda.ClientOption) (time.Duration, error) {
		clk := vclock.NewSim()
		dev := gpu.New(gpu.Config{Clock: clk})
		srv := rcuda.NewServer(dev)
		cliEnd, srvEnd := transport.Pipe(link, clk, nil)
		go func() { _ = srv.ServeConn(srvEnd) }()
		client, err := rcuda.Open(cliEnd, img, opts...)
		if err != nil {
			return 0, err
		}
		defer client.Close()
		ptr, err := client.Malloc(size)
		if err != nil {
			return 0, err
		}
		start := clk.Now()
		if err := client.MemcpyToDevice(ptr, make([]byte, size)); err != nil {
			return 0, err
		}
		return clk.Now() - start, nil
	}
	if legacy, err = run(); err != nil {
		return 0, 0, err
	}
	if chunked, err = run(rcuda.WithChunkedTransfers(1, protocol.DefaultChunkSize)); err != nil {
		return 0, 0, err
	}
	return legacy, chunked, nil
}

func (c Config) expTableI(sb *strings.Builder) {
	sb.WriteString("## Table I — remote API message breakdown\n\n")
	sb.WriteString(`Derived from the protocol encoders; all fixed sizes match the paper
(Initialization x+4/12, cudaMalloc 8/8, cudaMemcpy x+20/4 and 20/x+4,
cudaLaunch x+44/4, cudaFree 8/4; asserted byte-for-byte in
internal/protocol tests). One engineering deviation: our launch message's
variable region carries the packed kernel parameters after the
NUL-terminated kernel name (the "Parameters offset" field locates them),
so the MM launch is 68 bytes instead of the paper's 52. Both sizes sit on
the flat region of the small-message latency curve, so transfer-time
estimates are unaffected.

`)
}

func (c Config) expFigures34(sb *strings.Builder) error {
	sb.WriteString("## Figures 3 and 4 — network characterization\n\n")
	sb.WriteString("| network | quantity | paper | reproduced |\n|---|---|---|---|\n")
	for _, link := range netsim.Testbed() {
		pp := &netsim.PingPong{Link: link, Noise: c.noise(21)}
		pts := pp.MeasureLarge(largeSizes, 100)
		fit, err := netsim.FitLarge(pts)
		if err != nil {
			return err
		}
		reg, _ := link.Regression()
		fmt.Fprintf(sb, "| %s | large-payload fit (ms/MB) | %.1f·n %+.1f | %.2f·n %+.2f |\n",
			link.Name(), reg.Slope, reg.Intercept, fit.Slope, fit.Intercept)
		fmt.Fprintf(sb, "| %s | effective bandwidth (MB/s) | %.1f | %.1f |\n",
			link.Name(), link.Bandwidth(), netsim.EffectiveBandwidth(fit))
		fmt.Fprintf(sb, "| %s | correlation r | 1.0 | %.4f |\n", link.Name(), fit.R)
	}
	tcp := netsim.GigaETCPModel()
	moduleOneWay, err := tcp.OneWay(21490)
	if err != nil {
		return err
	}
	fmt.Fprintf(sb, `
Small-message latencies interpolate the paper's own anchor points
(22.2–338.7 µs GigaE, 20.0–80.9 µs 40GI), exact at every anchor. The
reproduced GigaE intercept absorbs the modeled TCP-window excess (~16–23 ms
on 1–64 MB payloads), which the paper's minimum-of-100 fit filtered out;
the slope — and hence the bandwidth every estimate uses — matches.

A mechanistic TCP slow-start model (netsim.TCPMicroModel: 22.2 µs base
latency, 1460-byte MSS, initial window 1, doubling per flight)
independently *predicts* the paper's 21,490-byte module-transfer anchor at
%.1f µs against the measured 338.7 µs — 15 segments in 4 flights, 3 RTT
stalls — explaining the "non-linear time response" the paper attributes to
the TCP window.

`, moduleOneWay.Seconds()*1e6)
	return nil
}

func (c Config) expTableII(sb *strings.Builder) {
	sb.WriteString("## Table II — per-call transfer estimates\n\n")
	type check struct {
		what        string
		paper, ours float64 // µs
	}
	ge, ib := netsim.GigaE(), netsim.IB40G()
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	mm := perfmodel.TableII(calib.MM, 4096, ge)
	mmIB := perfmodel.TableII(calib.MM, 4096, ib)
	fft := perfmodel.TableII(calib.FFT, 2048, ge)
	checks := []check{
		{"MM init send, GigaE", 338.7, us(mm[0].SendTime)},
		{"MM init recv, GigaE", 44.4, us(mm[0].RecvTime)},
		{"MM cudaMalloc send, GigaE", 22.2, us(mm[1].SendTime)},
		{"MM init send, 40GI", 80.9, us(mmIB[0].SendTime)},
		{"MM cudaMalloc send, 40GI", 27.9, us(mmIB[1].SendTime)},
		{"FFT init send, GigaE", 233.9, us(fft[0].SendTime)},
		{"MM memcpy(to device) @4096, GigaE (ms)", 569.4 * 1e3, us(mm[2].SendTime)},
	}
	sb.WriteString("| call | paper (µs) | reproduced (µs) |\n|---|---|---|\n")
	for _, ch := range checks {
		fmt.Fprintf(sb, "| %s | %.1f | %.1f |\n", ch.what, ch.paper, ch.ours)
	}
	sb.WriteString("\n")
}

func (c Config) expTablesIIIandV(sb *strings.Builder) {
	sb.WriteString("## Tables III and V — per-copy transfer times\n\n")
	var maxRel float64
	var cells int
	paperIII := map[string]map[int][2]float64{ // net -> size -> {MM ms, unused}
		"GigaE": {4096: {569.4}, 6144: {1281.1}, 8192: {2277.6}, 10240: {3558.7},
			12288: {5124.6}, 14336: {6975.1}, 16384: {9110.3}, 18432: {11530.2}},
		"40GI": {4096: {46.8}, 6144: {105.3}, 8192: {187.3}, 10240: {292.6},
			12288: {421.3}, 14336: {573.5}, 16384: {749.0}, 18432: {948.0}},
		"10GE": {4096: {72.7}, 18432: {1472.7}},
		"10GI": {4096: {66.0}, 18432: {1336.1}},
		"Myr":  {4096: {85.3}, 18432: {1728.0}},
		"F-HT": {4096: {44.4}, 18432: {898.8}},
		"A-HT": {4096: {22.2}, 18432: {449.4}},
	}
	for netName, sizes := range paperIII {
		link, err := netsim.ByName(netName)
		if err != nil {
			continue
		}
		for size, want := range sizes {
			got := perfmodel.TransferTime(link, calib.MM, size).Seconds() * 1e3
			rel := math.Abs(got-want[0]) / want[0]
			if rel > maxRel {
				maxRel = rel
			}
			cells++
		}
	}
	fmt.Fprintf(sb, "Bandwidth-only arithmetic; across %d spot-checked MM cells the maximum\nrelative deviation from the printed values is %.2f%% (rounding in the paper).\n\n",
		cells, maxRel*100)
}

func (c Config) expTableIV(sb *strings.Builder) error {
	sb.WriteString("## Table IV — cross-validation of the estimation models\n\n")
	ge, ib := netsim.GigaE(), netsim.IB40G()
	for _, cs := range []calib.CaseStudy{calib.MM, calib.FFT} {
		geMeas, err := c.measureSeries(cs, ge, 1)
		if err != nil {
			return err
		}
		ibMeas, err := c.measureSeries(cs, ib, 2)
		if err != nil {
			return err
		}
		fwd, err := perfmodel.CrossValidate(cs, ge, ib, geMeas, ibMeas)
		if err != nil {
			return err
		}
		rev, err := perfmodel.CrossValidate(cs, ib, ge, ibMeas, geMeas)
		if err != nil {
			return err
		}
		fmt.Fprintf(sb, "### %s (times in %s)\n\n", cs, unitName(cs))
		sb.WriteString("| size | err% GigaE model (paper) | err% GigaE model (ours) | err% 40GI model (paper) | err% 40GI model (ours) |\n|---|---|---|---|---|\n")
		for i, row := range fwd {
			pf, _ := calib.PaperCrossError(cs, "GigaE", row.Size)
			pr, _ := calib.PaperCrossError(cs, "40GI", row.Size)
			fmt.Fprintf(sb, "| %d | %.2f | %.2f | %.2f | %.2f |\n",
				row.Size, pf, row.RelativeErrorPc, pr, rev[i].RelativeErrorPc)
		}
		sb.WriteString("\n")
	}
	sb.WriteString(`Shape reproduced: MM errors stay within a few percent (paper: |err| ≤ 2.2%),
while FFT errors are large at small batches and shrink with transfer size
(paper: 33.95% → 5.77% on the GigaE model, −16.0% → −2.25% on the 40GI
model) — the signature of the GigaE TCP-window excess on 16–128 MB
transfers that the linear model folds into its fixed time.

`)
	return nil
}

func (c Config) expTableVI(sb *strings.Builder, data map[calib.CaseStudy]TableVIResult) {
	sb.WriteString("## Table VI — projections onto the HPC networks\n\n")
	for _, cs := range []calib.CaseStudy{calib.MM, calib.FFT} {
		d := data[cs]
		var worst, sum float64
		var n int
		for _, netName := range calib.TargetNetworks() {
			for _, size := range calib.Sizes(cs) {
				for _, m := range []struct {
					model string
					got   time.Duration
				}{
					{"GigaE", d.EstGigaEModel[netName][size]},
					{"40GI", d.Est40GIModel[netName][size]},
				} {
					want, ok := calib.PaperTargetEstimate(cs, m.model, netName, size)
					if !ok {
						continue
					}
					rel := math.Abs(m.got.Seconds()-want.Seconds()) / want.Seconds()
					sum += rel
					n++
					if rel > worst {
						worst = rel
					}
				}
			}
		}
		fmt.Fprintf(sb, "- **%s**: %d estimated cells (5 networks × %d sizes × 2 models); mean |Δ| vs. paper %.2f%%, worst %.2f%%.\n",
			cs, n, len(calib.Sizes(cs)), sum/float64(n)*100, worst*100)
	}
	sb.WriteString("\n")
}

func (c Config) expFigures56(sb *strings.Builder, data map[calib.CaseStudy]TableVIResult) {
	sb.WriteString("## Figures 5 and 6 — qualitative shape\n\n")
	mm, fft := data[calib.MM], data[calib.FFT]
	checks := []struct {
		name string
		ok   bool
	}{
		{"MM: local GPU beats CPU for m ≥ 6144", mm.GPU[6144] < mm.CPU[6144] && mm.GPU[18432] < mm.CPU[18432]},
		{"MM: every HPC-network estimate beats CPU at m = 18432",
			allBeat(mm.EstGigaEModel, mm.CPU, 18432) && allBeat(mm.Est40GIModel, mm.CPU, 18432)},
		{"MM: GigaE remoting roughly doubles the 40GI time at m = 4096",
			ratioIn(mm.MeasuredGigaE[4096], mm.Measured40GI[4096], 1.5, 2.3)},
		{"MM: remote 40GI beats the local GPU at m = 4096 (pre-initialized context)",
			mm.Measured40GI[4096] < mm.GPU[4096]},
		{"FFT: CPU beats the local GPU at every batch", fft.CPU[2048] < fft.GPU[2048] && fft.CPU[16384] < fft.GPU[16384]},
		{"FFT: CPU beats every remote estimate", allLose(fft.Est40GIModel, fft.CPU, 2048) && allLose(fft.EstGigaEModel, fft.CPU, 16384)},
		{"FFT: GigaE remoting is the slowest configuration",
			fft.MeasuredGigaE[8192] > fft.Measured40GI[8192] && fft.MeasuredGigaE[8192] > fft.EstGigaEModel["Myr"][8192]},
	}
	sb.WriteString("| claim | holds |\n|---|---|\n")
	for _, ch := range checks {
		fmt.Fprintf(sb, "| %s | %v |\n", ch.name, ch.ok)
	}
	fmt.Fprintf(sb, "\nFull series: `go run ./cmd/rcuda-repro -figure 5` and `-figure 6`.\n")
	_ = workload.PaperRepetitions
}

func allBeat(est map[string]map[int]time.Duration, base map[int]time.Duration, size int) bool {
	for _, series := range est {
		if series[size] >= base[size] {
			return false
		}
	}
	return true
}

func allLose(est map[string]map[int]time.Duration, base map[int]time.Duration, size int) bool {
	for _, series := range est {
		if series[size] <= base[size] {
			return false
		}
	}
	return true
}

func ratioIn(a, b time.Duration, lo, hi float64) bool {
	if b == 0 {
		return false
	}
	r := a.Seconds() / b.Seconds()
	return r >= lo && r <= hi
}
