package report

import (
	"fmt"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
	"rcuda/internal/trace"
	"rcuda/internal/vclock"
	"rcuda/internal/workload"
)

// Figure2 runs a functional remote matrix multiplication with tracing and
// renders the client-server message sequence of the paper's Figure 2.
func Figure2(size int) (string, error) {
	clk := vclock.NewSim()
	rec := trace.NewRecorder(clk)
	r, err := workload.Run(calib.MM, size, workload.Remote, workload.Options{
		Link:       netsim.IB40G(),
		Functional: true,
		Clock:      clk,
		Observer:   rec,
	})
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("Figure 2 — Client-server communications for a matrix multiplication (m=%d, 40GI, total %v)\n\n",
		size, r.Total)
	out += rec.Render()
	out += "\nPer-phase breakdown:\n"
	var rows [][]string
	for _, b := range rec.PhaseBreakdown(0) {
		if b.Calls == 0 {
			continue
		}
		rows = append(rows, []string{
			b.Phase.String(), fmt.Sprint(b.Calls),
			fmt.Sprint(b.SendBytes), fmt.Sprint(b.RecvBytes), b.Time.String(),
		})
	}
	out += tabulate([]string{"Phase", "Calls", "Sent (B)", "Recv (B)", "Time"}, rows)
	return out, nil
}

// Figure 3/4 payload grids, matching the plotted ranges of the paper.
var (
	smallSizes = []int64{4, 8, 12, 16, 20, 32, 52, 58, 64, 128, 256, 512,
		1024, 2048, 4096, 7856, 12288, 16384, 21490}
	largeSizes = []int64{1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20,
		32 << 20, 64 << 20, 128 << 20, 256 << 20, 512 << 20, 1 << 30}
)

// FigureLatency reproduces Figure 3 (GigaE) or Figure 4 (40GI): the
// ping-pong characterization of a testbed network, as two CSV series —
// average one-way latency (µs) for small payloads and minimum one-way
// latency (ms) for large payloads — followed by the fitted regression.
func (c Config) FigureLatency(link *netsim.Link) (string, error) {
	pp := &netsim.PingPong{Link: link, Noise: c.noise(11)}

	small := pp.MeasureSmall(smallSizes, 250)
	var smallRows [][]string
	for _, p := range small {
		smallRows = append(smallRows, []string{fmt.Sprintf("%.0f", p.X), fmt.Sprintf("%.1f", p.Y)})
	}

	large := pp.MeasureLarge(largeSizes, 100)
	var largeRows [][]string
	for _, p := range large {
		largeRows = append(largeRows, []string{fmt.Sprintf("%.2f", p.X), fmt.Sprintf("%.3f", p.Y)})
	}
	fit, err := netsim.FitLarge(large)
	if err != nil {
		return "", err
	}

	figure := 3
	if link.Name() == "40GI" {
		figure = 4
	}
	out := fmt.Sprintf("Figure %d — End-to-end latency on the %s network\n\n", figure, link.Name())
	out += "Left (small payloads, average of 250 ping-pongs):\nbytes,one_way_us\n"
	out += csvLines(nil, smallRows)
	out += "\nRight (large payloads, minimum of 100 ping-pongs):\nMB,one_way_ms\n"
	out += csvLines(nil, largeRows)
	out += fmt.Sprintf("\nLinear regression: t(n MB) = %.2f·n %+.2f ms (r = %.4f)\n",
		fit.Slope, fit.Intercept, fit.R)
	out += fmt.Sprintf("Effective one-way bandwidth: %.1f MB/s", netsim.EffectiveBandwidth(fit))
	if reg, ok := link.Regression(); ok {
		out += fmt.Sprintf("   [paper: %.1f·n %+.1f ms, %.1f MB/s]",
			reg.Slope, reg.Intercept, link.Bandwidth())
	}
	out += "\n"
	return out, nil
}

// FigureSeries renders the execution-time series of Figure 5 (GigaE-based
// model) or Figure 6 (40GI-based model) for one case study as CSV: size,
// CPU, GPU, measured GigaE, measured 40GI, and one estimated column per
// target network.
func (c Config) FigureSeries(cs calib.CaseStudy, model string) (string, error) {
	data, err := c.TableVIData()
	if err != nil {
		return "", err
	}
	d := data[cs]
	est := d.EstGigaEModel
	figure := 5
	if model == "40GI" {
		est = d.Est40GIModel
		figure = 6
	}
	header := []string{"size", "cpu", "gpu", "gigae", "40gi"}
	for _, n := range calib.TargetNetworks() {
		header = append(header, n)
	}
	var rows [][]string
	f := func(d time.Duration) string { return fmtPaperUnit(cs, d) }
	for _, size := range calib.Sizes(cs) {
		row := []string{fmt.Sprint(size),
			f(d.CPU[size]), f(d.GPU[size]),
			f(d.MeasuredGigaE[size]), f(d.Measured40GI[size])}
		for _, n := range calib.TargetNetworks() {
			row = append(row, f(est[n][size]))
		}
		rows = append(rows, row)
	}
	title := fmt.Sprintf("Figure %d — Processing times for %s, estimates based on the %s model (times in %s)\n",
		figure, cs, model, unitName(cs))
	return title + csvLines(header, rows), nil
}

// workloadSeries measures a local backend series with the campaign's noise.
func workloadSeries(cs calib.CaseStudy, c Config, stream int64, gpu bool) (map[int]time.Duration, error) {
	backend := workload.CPU
	if gpu {
		backend = workload.LocalGPU
	}
	return workload.MeasureSeries(cs, backend, workload.Options{Noise: c.noise(stream)}, c.reps())
}
