package report

import (
	"os"
	"testing"
)

// The committed EXPERIMENTS.md must match what the current code generates
// under the default configuration — the document regenerates
// deterministically (fixed seed), so any model or calibration change that
// shifts results forces the documented numbers to be refreshed with
//
//	go run ./cmd/rcuda-repro -experiments > EXPERIMENTS.md
func TestExperimentsDocumentIsFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign; skipped in -short mode")
	}
	committed, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatalf("read committed document: %v", err)
	}
	generated, err := DefaultConfig().Experiments()
	if err != nil {
		t.Fatal(err)
	}
	if string(committed) != generated+"\n" && string(committed) != generated {
		t.Fatal("EXPERIMENTS.md is stale; regenerate with `go run ./cmd/rcuda-repro -experiments > EXPERIMENTS.md`")
	}
}
