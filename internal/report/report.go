// Package report regenerates the paper's tables and figures from the
// reproduction stack: the protocol's message breakdown (Table I), the
// network characterization plots (Figures 3 and 4), the per-call and
// per-copy transfer estimates (Tables II, III, V), the model
// cross-validation (Table IV), the projections onto the HPC networks
// (Table VI), and the execution-time series behind Figures 5 and 6.
//
// Emitters return plain text (aligned with text/tabwriter) or CSV so the
// command-line tools can print or save them.
package report

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
	"rcuda/internal/workload"
)

// Config parameterizes the simulated measurement campaign behind the
// generated tables.
type Config struct {
	// Reps is the number of executions averaged per data point; the
	// paper uses 30.
	Reps int
	// Seed drives the deterministic noise; runs with the same seed
	// produce identical documents.
	Seed int64
	// Sigma is the relative standard deviation of the modeled
	// measurement noise. Zero disables noise.
	Sigma float64
}

// DefaultConfig mirrors the paper's methodology with a small, reproducible
// noise level.
func DefaultConfig() Config { return Config{Reps: workload.PaperRepetitions, Seed: 1, Sigma: 0.004} }

func (c Config) reps() int {
	if c.Reps <= 0 {
		return 1
	}
	return c.Reps
}

func (c Config) noise(stream int64) *netsim.Noise {
	if c.Sigma == 0 {
		return nil
	}
	return netsim.NewNoise(c.Seed*1000+stream, c.Sigma)
}

// measureSeries runs the simulated campaign for one case study on one
// testbed network.
func (c Config) measureSeries(cs calib.CaseStudy, link *netsim.Link, stream int64) (map[int]time.Duration, error) {
	return workload.MeasureSeries(cs, workload.Remote,
		workload.Options{Link: link, Noise: c.noise(stream)}, c.reps())
}

// fmtPaperUnit formats a duration in the paper's unit for the case study:
// seconds for MM, milliseconds for FFT.
func fmtPaperUnit(cs calib.CaseStudy, d time.Duration) string {
	if cs == calib.MM {
		return fmt.Sprintf("%.2f", d.Seconds())
	}
	return fmt.Sprintf("%.2f", d.Seconds()*1e3)
}

// unitName names the paper's unit for a case study.
func unitName(cs calib.CaseStudy) string {
	if cs == calib.MM {
		return "s"
	}
	return "ms"
}

// tabulate renders rows with aligned columns.
func tabulate(header []string, rows [][]string) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	_ = w.Flush()
	return sb.String()
}

// csvLines renders comma-separated rows.
func csvLines(header []string, rows [][]string) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(header, ","))
	sb.WriteByte('\n')
	for _, r := range rows {
		sb.WriteString(strings.Join(r, ","))
		sb.WriteByte('\n')
	}
	return sb.String()
}
