package report

import (
	"fmt"

	"rcuda/internal/calib"
	"rcuda/internal/contention"
	"rcuda/internal/netsim"
)

// Figure9 is the third extension figure: the multi-client contention study
// (the paper's final future-work item). For each testbed network it sweeps
// the number of concurrent clients sharing one GPU server and reports the
// mean per-client slowdown relative to a lone client, plus the shared
// link's and the GPU's busy fractions — exposing which resource saturates
// first on each interconnect.
func (c Config) Figure9(maxClients int) (string, error) {
	if maxClients < 2 {
		maxClients = 8
	}
	var out string
	out += fmt.Sprintf("Figure 9 (extension) — Per-client slowdown sharing one GPU server (1-%d clients)\n", maxClients)
	for _, sel := range []struct {
		cs   calib.CaseStudy
		size int
	}{{calib.MM, 8192}, {calib.FFT, 8192}} {
		for _, netName := range []string{"GigaE", "40GI"} {
			link, err := netsim.ByName(netName)
			if err != nil {
				return "", err
			}
			results, err := contention.Sweep(contention.Params{
				CS: sel.cs, Size: sel.size, Link: link,
			}, maxClients)
			if err != nil {
				return "", err
			}
			slow := contention.Slowdown(results)
			out += fmt.Sprintf("\n%s size %d over %s:\nclients,mean_slowdown,p95_turnaround_ms,link_util,gpu_util\n",
				sel.cs, sel.size, netName)
			var rows [][]string
			for i, r := range results {
				rows = append(rows, []string{
					fmt.Sprint(i + 1),
					fmt.Sprintf("%.2f", slow[i]),
					fmt.Sprintf("%.1f", contention.P95Turnaround(r).Seconds()*1e3),
					fmt.Sprintf("%.2f", r.LinkUtilization),
					fmt.Sprintf("%.2f", r.GPUUtilization),
				})
			}
			out += csvLines(nil, rows)
		}
	}
	return out, nil
}
