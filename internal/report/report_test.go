package report

import (
	"os"
	"strings"
	"testing"

	"rcuda/internal/calib"
	"rcuda/internal/netsim"
)

// fastConfig keeps table-generation tests quick and deterministic.
func fastConfig() Config { return Config{Reps: 2, Seed: 1, Sigma: 0.002} }

func TestTableIContainsPaperRows(t *testing.T) {
	out := TableI()
	for _, want := range []string{
		"cudaMalloc", "cudaMemcpy (to device)", "cudaMemcpy (to host)",
		"cudaLaunch", "cudaFree", "Initialization",
		"x+4", "x+20", "x+44", "Compute capability",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIEvaluatesBothStudies(t *testing.T) {
	out := TableII(4096, 2048)
	for _, want := range []string{"MM (size 4096)", "FFT (size 2048)", "21490", "7856", "338.7", "Total"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II missing %q:\n%s", want, out)
		}
	}
}

func TestTableIIIMatchesPaperCells(t *testing.T) {
	out := TableIII()
	// Spot-check famous cells: MM 4096 → 569.4/46.8 ms; FFT 2048 → 71.2/5.9.
	for _, want := range []string{"569.4", "46.8", "71.2", "5.9", "11530", "948.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table III missing %q:\n%s", want, out)
		}
	}
}

func TestTableVMatchesPaperCells(t *testing.T) {
	out := TableV()
	for _, want := range []string{"72.7", "66.0", "85.3", "44.4", "22.2", "1472.7", "449.4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table V missing %q:\n%s", want, out)
		}
	}
}

func TestTableIVRunsCampaign(t *testing.T) {
	out, err := fastConfig().TableIV()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MM", "FFT", "4096", "18432", "2048", "16384", "paper Err %"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table IV missing %q:\n%s", want, out)
		}
	}
}

func TestTableVIGrid(t *testing.T) {
	out, err := fastConfig().TableVI()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CPU", "GPU", "GigaE->10GE", "40GI->A-HT", "18432"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table VI missing %q:\n%s", want, out)
		}
	}
}

func TestTableVIDataShape(t *testing.T) {
	data, err := fastConfig().TableVIData()
	if err != nil {
		t.Fatal(err)
	}
	for _, cs := range []calib.CaseStudy{calib.MM, calib.FFT} {
		d := data[cs]
		if len(d.CPU) != len(calib.Sizes(cs)) {
			t.Fatalf("%v: CPU series has %d sizes", cs, len(d.CPU))
		}
		if len(d.EstGigaEModel) != 5 || len(d.Est40GIModel) != 5 {
			t.Fatalf("%v: estimate grids cover %d/%d networks", cs, len(d.EstGigaEModel), len(d.Est40GIModel))
		}
		// The MM shape: estimates beat CPU at large sizes on every target.
		if cs == calib.MM {
			for n, series := range d.EstGigaEModel {
				if series[18432] >= d.CPU[18432] {
					t.Fatalf("MM 18432 on %s: estimate %v should beat CPU %v", n, series[18432], d.CPU[18432])
				}
			}
		}
		// The FFT shape: even the fastest network loses to the CPU.
		if cs == calib.FFT {
			for n, series := range d.Est40GIModel {
				if series[2048] <= d.CPU[2048] {
					t.Fatalf("FFT 2048 on %s: estimate %v should lose to CPU %v", n, series[2048], d.CPU[2048])
				}
			}
		}
	}
}

func TestFigure2Renders(t *testing.T) {
	out, err := Figure2(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 2", "Initialization", "cudaLaunch", "Kernel execution", "Per-phase"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFigureLatencyBothNetworks(t *testing.T) {
	c := fastConfig()
	ge, err := c.FigureLatency(netsim.GigaE())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ge, "Figure 3") || !strings.Contains(ge, "Linear regression") {
		t.Fatalf("GigaE figure malformed:\n%s", ge)
	}
	if !strings.Contains(ge, "[paper: 8.9·n -0.3 ms, 112.4 MB/s]") {
		t.Fatalf("GigaE figure missing paper reference:\n%s", ge)
	}
	ib, err := c.FigureLatency(netsim.IB40G())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ib, "Figure 4") {
		t.Fatalf("40GI figure malformed:\n%s", ib)
	}
}

func TestFigureSeriesBothModels(t *testing.T) {
	c := fastConfig()
	f5, err := c.FigureSeries(calib.MM, "GigaE")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f5, "Figure 5") || !strings.Contains(f5, "size,cpu,gpu,gigae,40gi,10GE") {
		t.Fatalf("Figure 5 malformed:\n%s", f5)
	}
	f6, err := c.FigureSeries(calib.FFT, "40GI")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f6, "Figure 6") {
		t.Fatalf("Figure 6 malformed:\n%s", f6)
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.Reps != 30 {
		t.Fatalf("default reps = %d, want the paper's 30", c.Reps)
	}
	if c.noise(1) == nil {
		t.Fatal("default config should produce noise")
	}
	if (Config{}).noise(1) != nil {
		t.Fatal("zero sigma must disable noise")
	}
}

func TestFigure7Extension(t *testing.T) {
	out, err := fastConfig().Figure7(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 7", "GigaE sync", "A-HT piped", "gain %"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure 7 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure8Extension(t *testing.T) {
	out, err := fastConfig().Figure8(8192, 8192, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 8", "bandwidth_MBps", "bandwidth floor", "MM size 8192", "FFT size 8192", "none — not worth remoting"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure 8 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure9Extension(t *testing.T) {
	out, err := fastConfig().Figure9(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 9", "mean_slowdown", "link_util", "MM size 8192 over GigaE", "FFT size 8192 over 40GI"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure 9 missing %q:\n%s", want, out)
		}
	}
}

func TestWriteSVGs(t *testing.T) {
	dir := t.TempDir()
	paths, err := fastConfig().WriteSVGs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 10 {
		t.Fatalf("wrote %d figures, want 10", len(paths))
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "<svg ") {
			t.Fatalf("%s is not an SVG", p)
		}
	}
}
