package loadgen

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"rcuda/internal/broker"
	"rcuda/internal/faults"
	"rcuda/internal/protocol"
)

func TestRunRejectsBadClasses(t *testing.T) {
	if _, err := Run(Config{Classes: []Class{{Name: "x", Weight: 0, HoldMean: time.Millisecond}}}); err == nil {
		t.Fatal("accepted a zero-weight class")
	}
	if _, err := Run(Config{Classes: []Class{{Name: "x", Weight: 1}}}); err == nil {
		t.Fatal("accepted a zero-hold class")
	}
	if _, err := Run(Config{Classes: []Class{{Name: "x", Weight: 1, HoldMean: time.Millisecond, SchedClass: 9}}}); err == nil {
		t.Fatal("accepted an out-of-range scheduling class")
	}
}

// schedMix is a three-way scheduling-class mix: sporadic realtime
// inference, the batch bulk of the load, and best-effort scavengers.
func schedMix() []Class {
	return []Class{
		{Name: "rt", Weight: 1, HoldMean: 5 * time.Millisecond, Durable: true, SchedClass: protocol.SchedClassRealtime},
		{Name: "batch", Weight: 2, HoldMean: 40 * time.Millisecond, Durable: true, SchedClass: protocol.SchedClassBatch},
		{Name: "scavenge", Weight: 1, HoldMean: 20 * time.Millisecond, Durable: false, SchedClass: protocol.SchedClassBestEffort},
	}
}

// TestMixedClassPopulation drives a scheduling-class mix through the
// class-aware policy: the probe loop must feed per-class gauges to the
// placer, every class must see placements, and the run must be
// deterministic down to its JSON encoding.
func TestMixedClassPopulation(t *testing.T) {
	cfg := Config{
		Seed:           13,
		Sessions:       20_000,
		Arrival:        BurstyOnOff,
		Rate:           10_000,
		Classes:        schedMix(),
		Policy:         broker.ClassAware,
		InitialDaemons: 4,
		DaemonCapacity: 64,
		Autoscale:      &broker.AutoscalerConfig{Min: 4, Max: 32, DaemonCapacity: 64, Cooldown: 200 * time.Millisecond},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Policy != broker.ClassAware.String() {
		t.Fatalf("result policy %q", a.Policy)
	}
	if a.Completed != int64(a.Sessions) || a.LostDurable != 0 {
		t.Fatalf("completed %d of %d, lost durable %d", a.Completed, a.Sessions, a.LostDurable)
	}
	if a.Pool.Probes == 0 {
		t.Fatal("no probes — class gauges never reached the placer")
	}
	for i, cr := range a.Classes {
		if cr.SchedClass != cfg.Classes[i].SchedClass {
			t.Fatalf("class %q echoes sched class %d, want %d", cr.Name, cr.SchedClass, cfg.Classes[i].SchedClass)
		}
		if cr.Placements == 0 {
			t.Fatalf("class %q saw no placements: %+v", cr.Name, a.Classes)
		}
		if cr.WaitP99 < cr.WaitP50 {
			t.Fatalf("class %q wait percentiles out of order: %+v", cr.Name, cr)
		}
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("two identically-seeded class-aware runs diverged")
	}
}

// TestMixedClassHundredThousand is the 1e5-scale fairness scenario from
// the issue: a mixed-class population through class-aware placement on an
// elastic fleet, with per-class waits surfaced in the result.
func TestMixedClassHundredThousand(t *testing.T) {
	if testing.Short() {
		t.Skip("1e5-session run skipped in -short mode")
	}
	r, err := Run(Config{
		Seed:           21,
		Sessions:       100_000,
		Rate:           40_000,
		Classes:        schedMix(),
		Policy:         broker.ClassAware,
		InitialDaemons: 4,
		DaemonCapacity: 64,
		Autoscale:      &broker.AutoscalerConfig{Min: 4, Max: 64, DaemonCapacity: 64, Cooldown: 250 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed+r.LostNonDurable != 100_000 || r.LostDurable != 0 || r.Unplaced != 0 {
		t.Fatalf("accounting: completed %d lost %d unplaced %d", r.Completed, r.LostNonDurable, r.Unplaced)
	}
	if len(r.Classes) != 3 {
		t.Fatalf("want 3 class rows, got %+v", r.Classes)
	}
	for _, cr := range r.Classes {
		if cr.Placements == 0 {
			t.Fatalf("class %q saw no placements: %+v", cr.Name, r.Classes)
		}
		t.Logf("class %q: %d placements, p50 %v p99 %v", cr.Name, cr.Placements, cr.WaitP50, cr.WaitP99)
	}
	if r.PeakDaemons <= 4 {
		t.Fatalf("fleet never grew under 40k/s: peak %d", r.PeakDaemons)
	}
}

func TestRunCompletesOfferedLoad(t *testing.T) {
	r, err := Run(Config{Seed: 7, Sessions: 5_000, Rate: 5_000, InitialDaemons: 8, DaemonCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if r.Placed < int64(r.Sessions) || r.Completed != int64(r.Sessions) {
		t.Fatalf("placed %d / completed %d of %d sessions", r.Placed, r.Completed, r.Sessions)
	}
	if r.LostDurable != 0 || r.LostNonDurable != 0 || r.Unplaced != 0 {
		t.Fatalf("clean run lost sessions: %+v", r)
	}
	if r.PlacedPerSec <= 0 || r.Elapsed <= 0 {
		t.Fatalf("degenerate throughput: %+v", r)
	}
	if r.QueueWaitP99 < r.QueueWaitP50 || r.QueueWaitMax < r.QueueWaitP99 {
		t.Fatalf("wait percentiles out of order: p50=%v p99=%v max=%v",
			r.QueueWaitP50, r.QueueWaitP99, r.QueueWaitMax)
	}
	if len(r.Trajectory) == 0 {
		t.Fatal("no trajectory samples")
	}
	if r.Pool.Probes == 0 {
		t.Fatal("no probes recorded — gauges never refreshed")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := Config{
		Seed:     42,
		Sessions: 20_000,
		Arrival:  BurstyOnOff,
		Rate:     10_000,
		Classes: []Class{
			{Name: "train", Weight: 1, HoldMean: 40 * time.Millisecond, Durable: true},
			{Name: "infer", Weight: 3, HoldMean: 5 * time.Millisecond, Durable: false},
		},
		InitialDaemons: 2,
		DaemonCapacity: 32,
		Autoscale:      &broker.AutoscalerConfig{Min: 2, Max: 32, DaemonCapacity: 32, Cooldown: 200 * time.Millisecond},
		FaultPlan:      faults.Seeded(99, faults.Config{ResetRate: 0.002, StallRate: 0.01, LatencyRate: 0.05}),
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The fault plan is stateful; rebuild it for the second run.
	cfg.FaultPlan = faults.Seeded(99, faults.Config{ResetRate: 0.002, StallRate: 0.01, LatencyRate: 0.05})
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identically-seeded runs diverged:\n%+v\n%+v", a, b)
	}
	// Byte-level reproducibility is what CI's freshness check relies on.
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("JSON encodings differ between identically-seeded runs")
	}
}

func TestRunSeedChangesOutcome(t *testing.T) {
	base := Config{Sessions: 2_000, Rate: 4_000, InitialDaemons: 2, DaemonCapacity: 16}
	a, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Seed = 1
	b, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed == b.Elapsed && a.QueueWaitMax == b.QueueWaitMax {
		t.Fatal("different seeds produced an identical timeline")
	}
}

func TestHundredThousandSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("1e5-session run skipped in -short mode")
	}
	r, err := Run(Config{
		Seed:           1,
		Sessions:       100_000,
		Rate:           20_000,
		InitialDaemons: 4,
		DaemonCapacity: 64,
		Autoscale:      &broker.AutoscalerConfig{Min: 4, Max: 64, DaemonCapacity: 64, Cooldown: 250 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != 100_000 || r.LostDurable != 0 {
		t.Fatalf("completed %d, lost durable %d", r.Completed, r.LostDurable)
	}
	if r.Autoscaler.ScaleUps == 0 {
		t.Fatalf("fleet never grew under 20k/s offered load: %+v", r.Autoscaler)
	}
	if r.PeakDaemons <= 4 {
		t.Fatalf("peak fleet %d never exceeded the initial 4", r.PeakDaemons)
	}
}

func TestAutoscaleGrowsAndShrinks(t *testing.T) {
	r, err := Run(Config{
		Seed:           3,
		Sessions:       30_000,
		Rate:           10_000,
		Classes:        []Class{{Name: "d", Weight: 1, HoldMean: 80 * time.Millisecond, Durable: true}},
		InitialDaemons: 2,
		DaemonCapacity: 32,
		Autoscale: &broker.AutoscalerConfig{
			Min: 2, Max: 48, DaemonCapacity: 32, Cooldown: 150 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != int64(r.Sessions) {
		t.Fatalf("completed %d of %d", r.Completed, r.Sessions)
	}
	// ~10k/s × 80ms ≈ 800 concurrent sessions needs ~25+ daemons of 32.
	if r.PeakDaemons < 10 {
		t.Fatalf("peak fleet %d implausibly small for the offered load", r.PeakDaemons)
	}
	// As the tail drains the controller hands daemons back.
	if r.Autoscaler.ScaleDowns == 0 || r.Pool.Retirements == 0 {
		t.Fatalf("fleet never shrank: %+v %+v", r.Autoscaler, r.Pool)
	}
	if r.DaemonsFinal >= r.PeakDaemons {
		t.Fatalf("final fleet %d did not settle below peak %d", r.DaemonsFinal, r.PeakDaemons)
	}
}

// TestChaosScaleDownStrandsNothing is the acceptance chaos test: daemons
// are killed by an injected fault plan while the autoscaler is actively
// growing and shrinking the fleet, and not one durable session may be
// lost — kills fail them over, and scale-down drains retiring daemons by
// migrating their residents (or vetoes when it cannot).
func TestChaosScaleDownStrandsNothing(t *testing.T) {
	r, err := Run(Config{
		Seed:     11,
		Sessions: 20_000,
		Arrival:  BurstyOnOff,
		Rate:     8_000,
		Classes: []Class{
			{Name: "durable", Weight: 3, HoldMean: 60 * time.Millisecond, Durable: true},
			{Name: "besteffort", Weight: 1, HoldMean: 20 * time.Millisecond, Durable: false},
		},
		InitialDaemons: 4,
		DaemonCapacity: 32,
		Autoscale: &broker.AutoscalerConfig{
			Min: 2, Max: 48, DaemonCapacity: 32, Cooldown: 150 * time.Millisecond,
		},
		FaultPlan: faults.Seeded(5, faults.Config{ResetRate: 0.01, StallRate: 0.02}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults == 0 || r.Pool.Failovers == 0 {
		t.Fatalf("chaos never bit: faults=%d failovers=%d", r.Faults, r.Pool.Failovers)
	}
	if r.LostDurable != 0 {
		t.Fatalf("%d durable sessions lost", r.LostDurable)
	}
	// Every durable session completed despite kills; only non-durable ones
	// may have died with their daemons.
	var durableOffered int64
	for _, c := range r.Classes {
		if c.Durable {
			durableOffered += int64(c.Sessions)
		}
	}
	if got := r.Completed + r.LostNonDurable + int64(r.Unplaced); got != int64(r.Sessions) {
		t.Fatalf("session accounting leaks: completed %d + lost %d + unplaced %d != %d",
			r.Completed, r.LostNonDurable, r.Unplaced, r.Sessions)
	}
	if r.Completed < durableOffered {
		t.Fatalf("completed %d < durable offered %d", r.Completed, durableOffered)
	}
	if r.Pool.Markdowns == 0 || r.Pool.Markups == 0 {
		t.Fatalf("stalls never flapped health: %+v", r.Pool)
	}
}

// TestScaleDownMigratesInsteadOfVetoing drives a long-hold all-durable
// load whose burst grows the fleet and whose tail drains it: scale-down
// then faces daemons that still hold live durable sessions, and must
// retire them by migrating the residents — no stranding, no lost
// sessions, and every migrated session still completes its hold.
func TestScaleDownMigratesInsteadOfVetoing(t *testing.T) {
	r, err := Run(Config{
		Seed:           17,
		Sessions:       20_000,
		Arrival:        BurstyOnOff,
		Rate:           6_000,
		Classes:        []Class{{Name: "train", Weight: 1, HoldMean: 120 * time.Millisecond, Durable: true}},
		BurstOnMean:    400 * time.Millisecond,
		BurstOffMean:   400 * time.Millisecond,
		BurstFactor:    6,
		InitialDaemons: 2,
		DaemonCapacity: 32,
		Autoscale: &broker.AutoscalerConfig{
			Min: 2, Max: 48, DaemonCapacity: 32, Cooldown: 100 * time.Millisecond,
			DownThreshold: 0.6,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Completed != int64(r.Sessions) || r.LostDurable != 0 || r.Unplaced != 0 {
		t.Fatalf("drain stranded work: completed %d of %d, lost %d, unplaced %d",
			r.Completed, r.Sessions, r.LostDurable, r.Unplaced)
	}
	if r.Pool.Retirements == 0 {
		t.Fatalf("fleet never shrank: %+v", r.Pool)
	}
	if r.Pool.Migrations == 0 {
		t.Fatalf("scale-down retired %d daemons without migrating a single resident: %+v",
			r.Pool.Retirements, r.Pool)
	}
	if r.Pool.MigrationFailures != 0 {
		t.Fatalf("simulated migrations cannot fail: %+v", r.Pool)
	}
	// Migration moves a running session without re-queuing it: failovers
	// count only chaos kills, of which this scenario has none.
	if r.Pool.Failovers != 0 {
		t.Fatalf("migrations were counted as failovers: %+v", r.Pool)
	}
}

func TestMaxDurationBoundsOverload(t *testing.T) {
	// One daemon, no autoscaler, offered load far beyond capacity: the
	// virtual clock must stop at MaxDuration with the backlog reported.
	r, err := Run(Config{
		Seed:           2,
		Sessions:       5_000,
		Rate:           50_000,
		Classes:        []Class{{Name: "slow", Weight: 1, HoldMean: time.Second, Durable: true}},
		InitialDaemons: 1,
		DaemonCapacity: 8,
		MaxDuration:    2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Elapsed > 2*time.Second {
		t.Fatalf("clock ran past MaxDuration: %v", r.Elapsed)
	}
	if r.Unplaced == 0 {
		t.Fatal("overloaded run reported no backlog")
	}
	if r.Pool.Spills == 0 {
		t.Fatal("saturated daemon never spilled")
	}
}
