// Package loadgen is the scale harness: a deterministic, virtual-clock load
// generator that drives hundreds of thousands to millions of simulated
// client sessions through the broker's real placement, spill, and failover
// code paths — without opening a single socket.
//
// The paper measures rCUDA's remote-GPU overhead per call and per
// application; the natural next question for a cluster operator is
// behavioral: what does the *pool* do under 10^5–10^6 session arrivals —
// how long do sessions queue, how often do placements spill, how does an
// elastic fleet track a bursty offered load? Answering that with real
// processes would need a cluster; answering it with a toy model would not
// exercise the shipping code. This package takes the middle path the repo
// uses throughout (cf. internal/cluster, internal/netsim): the broker's
// Placer and Autoscaler — the exact production decision logic — run
// unmodified over simulated daemons on a discrete-event loop, so a million
// sessions cost microseconds each and every run is byte-reproducible from
// its seed.
//
// The simulation closes three loops:
//
//   - placement: arrivals queue FIFO; each placement asks the Placer under
//     the configured policy, spills on full daemons, and records the
//     queue wait in O(1)-memory log-bucketed histograms;
//   - health: probe ticks feed daemon gauges back through Placer.NoteProbe
//     — the same stampede guard and markdown/markup accounting as live
//     pools — optionally perturbed by an injected fault plan (daemon
//     crashes, stalls, stale gauges);
//   - elasticity: an optional Autoscaler observes demand each probe tick
//     and spawns or retires simulated daemons through a ScaleDriver that
//     drains a retiring daemon by live-migrating its resident durable
//     sessions to the rest of the fleet (the same move the live pool makes
//     with checkpoint streaming); a daemon holding non-durable sessions, or
//     one the fleet has no spare capacity to absorb, vetoes instead — so
//     scale-down can never strand a session.
package loadgen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"rcuda/internal/broker"
	"rcuda/internal/des"
	"rcuda/internal/faults"
	"rcuda/internal/protocol"
	"rcuda/internal/stats"
)

// Arrival selects the arrival process shape.
type Arrival int

// Arrival processes.
const (
	// Poisson draws i.i.d. exponential interarrival times at Rate.
	Poisson Arrival = iota
	// BurstyOnOff alternates exponential ON/OFF phases; during ON the
	// arrival rate is Rate·BurstFactor, during OFF it is Rate/BurstFactor.
	BurstyOnOff
)

// String implements fmt.Stringer.
func (a Arrival) String() string {
	switch a {
	case Poisson:
		return "poisson"
	case BurstyOnOff:
		return "bursty"
	default:
		return fmt.Sprintf("Arrival(%d)", int(a))
	}
}

// ParseArrival maps an arrival process name (as printed by String) back to
// its value.
func ParseArrival(s string) (Arrival, error) {
	switch s {
	case "poisson":
		return Poisson, nil
	case "bursty":
		return BurstyOnOff, nil
	default:
		return 0, fmt.Errorf("loadgen: unknown arrival process %q", s)
	}
}

// Class is one session class in the offered mix.
type Class struct {
	// Name labels the class in results.
	Name string
	// Weight is the class's share of arrivals (relative, not normalized).
	Weight float64
	// HoldMean is the mean session hold time (exponentially distributed).
	HoldMean time.Duration
	// Durable sessions survive daemon kills by failing over (replayed on
	// another daemon); non-durable sessions die with their daemon.
	Durable bool
	// SchedClass is the scheduling class the class's sessions declare in
	// their hello, as a protocol.SchedClass* wire code. It rides in the
	// JobSpec at placement so the ClassAware policy can rank daemons by
	// per-class headroom. Zero is unspecified: daemons fold it into batch.
	SchedClass uint32
}

// Config parameterizes one load-generation run. Every random draw in the
// run derives from Seed, so two runs with equal configs produce identical
// Results.
type Config struct {
	// Seed is the master seed; arrival, class, hold, and phase streams are
	// derived from it. Zero is a valid (and distinct) seed.
	Seed int64
	// Sessions is the number of sessions to generate. Defaults to 10 000.
	Sessions int
	// Arrival selects the arrival process; Rate is its mean rate in
	// sessions per second. Rate defaults to 2 000/s.
	Arrival Arrival
	Rate    float64
	// BurstOnMean and BurstOffMean are the mean ON/OFF phase durations of
	// the bursty process (exponentially distributed); BurstFactor scales
	// Rate up during ON and down during OFF. Defaults: 200ms, 200ms, 4.
	BurstOnMean, BurstOffMean time.Duration
	BurstFactor               float64
	// Classes is the offered mix. Empty defaults to a single durable class
	// with a 50ms mean hold.
	Classes []Class
	// Policy is the placement policy. Default LeastLoaded.
	Policy broker.Policy
	// InitialDaemons is the starting fleet size (default 4);
	// DaemonCapacity is each daemon's session capacity (default 64).
	InitialDaemons int
	DaemonCapacity int
	// ProbeEvery is the gauge-refresh (and autoscaler observation) period;
	// SampleEvery is the trajectory sampling period. Defaults 50ms / 1s.
	ProbeEvery  time.Duration
	SampleEvery time.Duration
	// Autoscale, when non-nil, closes the elasticity loop with the given
	// controller configuration. Nil keeps the fleet fixed.
	Autoscale *broker.AutoscalerConfig
	// FaultPlan, when non-nil, is consulted once per daemon per probe
	// tick: reset/truncate decisions crash the daemon (durable sessions
	// fail over, non-durable are lost), stall marks it down until the next
	// clean probe (one markdown/markup flap), latency leaves its gauges
	// stale for the tick.
	FaultPlan *faults.Plan
	// MaxDuration hard-stops the virtual clock, bounding runs whose
	// offered load can never drain. Defaults to 1 hour of virtual time.
	MaxDuration time.Duration
}

func (c Config) withDefaults() Config {
	if c.Sessions <= 0 {
		c.Sessions = 10_000
	}
	if c.Rate <= 0 {
		c.Rate = 2_000
	}
	if c.BurstOnMean <= 0 {
		c.BurstOnMean = 200 * time.Millisecond
	}
	if c.BurstOffMean <= 0 {
		c.BurstOffMean = 200 * time.Millisecond
	}
	if c.BurstFactor <= 1 {
		c.BurstFactor = 4
	}
	if len(c.Classes) == 0 {
		c.Classes = []Class{{Name: "default", Weight: 1, HoldMean: 50 * time.Millisecond, Durable: true}}
	}
	if c.InitialDaemons <= 0 {
		c.InitialDaemons = 4
	}
	if c.DaemonCapacity <= 0 {
		c.DaemonCapacity = 64
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 50 * time.Millisecond
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = time.Second
	}
	if c.MaxDuration <= 0 {
		c.MaxDuration = time.Hour
	}
	return c
}

// ClassResult summarizes one class's queue-wait distribution.
type ClassResult struct {
	Name     string
	Durable  bool
	Sessions int
	// SchedClass echoes the class's declared scheduling class wire code.
	SchedClass uint32
	// Placements counts placements recorded for the class — arrivals plus
	// failover re-placements.
	Placements int64
	WaitP50    time.Duration
	WaitP99    time.Duration
	WaitMax    time.Duration
	WaitMean   time.Duration
}

// Sample is one point of the fleet trajectory.
type Sample struct {
	// At is the virtual-clock instant of the sample.
	At time.Duration
	// Daemons is the live (spawned, not crashed, not retired) fleet size.
	Daemons int
	// Live and Queued are the placed and waiting session counts.
	Live, Queued int
}

// Result is the deterministic outcome of one run.
type Result struct {
	// Config echo, for self-describing artifacts.
	Seed     int64
	Sessions int
	Arrival  string
	Policy   string

	// Placed counts sessions that reached a daemon at least once;
	// Completed those that ran their full hold. LostNonDurable counts
	// non-durable sessions that died with a crashed daemon; LostDurable
	// must be zero by construction (durable sessions always fail over) and
	// is reported so tests and CI can assert it. Unplaced sessions were
	// still queued when the clock stopped.
	Placed         int64
	Completed      int64
	LostDurable    int64
	LostNonDurable int64
	Unplaced       int

	// Elapsed is the virtual time the run spanned; PlacedPerSec is the
	// placement throughput over it.
	Elapsed      time.Duration
	PlacedPerSec float64

	// QueueWaitP50/P99/Max/Mean summarize arrival→placement waits across
	// all classes; Classes breaks them down per class.
	QueueWaitP50  time.Duration
	QueueWaitP99  time.Duration
	QueueWaitMax  time.Duration
	QueueWaitMean time.Duration
	Classes       []ClassResult

	// DaemonsFinal and PeakDaemons bracket the fleet trajectory, sampled
	// in full in Trajectory.
	DaemonsFinal int
	PeakDaemons  int
	Trajectory   []Sample

	// Pool carries the Placer's counters (spills, failovers, flaps,
	// retirements); Autoscaler the controller's (nil-safe zero when the
	// run was fixed-fleet); Faults the number of injected fault decisions.
	Pool       broker.PoolStats
	Autoscaler broker.AutoscalerStats
	Faults     int64
}

var errDaemonDown = errors.New("loadgen: daemon down")
var errDaemonStalled = errors.New("loadgen: daemon stalled")

// session is one simulated client session.
type session struct {
	class   int
	durable bool
	// enqueued is when the session last entered the queue (arrival or
	// failover re-enqueue); waits are measured from it.
	enqueued time.Duration
	hold     time.Duration
	// daemon is the current placement, -1 when queued, lost, or done.
	daemon int
	// epoch invalidates stale completion events after a failover.
	epoch int
}

// daemon is one simulated rcudad.
type daemon struct {
	idx      int // placer index
	capacity int
	alive    bool
	retired  bool
	live     int
	sessions map[int]struct{}
	// classLive counts resident sessions per scheduling class (wire code
	// minus one, unspecified folded into batch) — the gauges a
	// scheduler-enabled daemon reports in its stats probe's class block.
	classLive [protocol.SchedClassBestEffort]int
}

type sim struct {
	cfg    Config
	loop   *des.EventLoop
	pl     *broker.Placer
	scaler *broker.Autoscaler

	daemons []*daemon
	alive   int
	peak    int

	sessions []*session
	// pending is the arrival FIFO, retry the failover FIFO (drained
	// first); both use head cursors instead of reslicing.
	pending, retry         []int
	pendingHead, retryHead int

	created        int
	placed         int64
	completed      int64
	lostNonDurable int64
	live           int
	faults         int64

	wait      *stats.DurationHistogram
	classWait []*stats.DurationHistogram
	classN    []int64

	arrRNG, classRNG, holdRNG, phaseRNG *rand.Rand
	burstOn                             bool
	totalWeight                         float64
	// classed turns on the probe replies' per-class block, mirroring a
	// fleet of scheduler-enabled daemons. It is set when the mix declares
	// scheduling classes or the policy is class-aware, so legacy scenarios
	// keep byte-identical probe replies (and byte-identical results).
	classed bool

	trajectory []Sample
	stopped    bool
}

// Run executes one load-generation run to completion (all sessions done or
// MaxDuration reached) and returns its deterministic Result.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	for i, cl := range cfg.Classes {
		if cl.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: class %d (%q) has non-positive weight", i, cl.Name)
		}
		if cl.HoldMean <= 0 {
			return nil, fmt.Errorf("loadgen: class %d (%q) has non-positive hold mean", i, cl.Name)
		}
		if cl.SchedClass > protocol.SchedClassBestEffort {
			return nil, fmt.Errorf("loadgen: class %d (%q) has unknown scheduling class %d", i, cl.Name, cl.SchedClass)
		}
	}

	s := &sim{
		cfg:      cfg,
		loop:     des.NewEventLoop(),
		pl:       broker.NewPlacer(cfg.Policy),
		wait:     stats.NewDurationHistogram(),
		arrRNG:   rand.New(rand.NewSource(cfg.Seed)),
		classRNG: rand.New(rand.NewSource(cfg.Seed + 1)),
		holdRNG:  rand.New(rand.NewSource(cfg.Seed + 2)),
		phaseRNG: rand.New(rand.NewSource(cfg.Seed + 3)),
		burstOn:  true,
	}
	for _, cl := range cfg.Classes {
		s.totalWeight += cl.Weight
		s.classWait = append(s.classWait, stats.NewDurationHistogram())
		s.classN = append(s.classN, 0)
		if cl.SchedClass != protocol.SchedClassUnspecified {
			s.classed = true
		}
	}
	if cfg.Policy == broker.ClassAware {
		s.classed = true
	}
	for i := 0; i < cfg.InitialDaemons; i++ {
		s.spawnDaemon()
	}
	if cfg.Autoscale != nil {
		s.scaler = broker.NewAutoscaler(*cfg.Autoscale, (*scaleDriver)(s))
	}

	if cfg.Arrival == BurstyOnOff {
		s.loop.At(s.expDur(s.phaseRNG, cfg.BurstOnMean), s.togglePhase)
	}
	s.loop.At(s.interarrival(), s.arrive)
	s.loop.At(cfg.ProbeEvery, s.probeTick)
	s.loop.At(cfg.SampleEvery, s.sampleTick)

	elapsed := s.loop.Run()
	return s.result(elapsed), nil
}

// spawnDaemon adds one daemon to the fleet and registers it with the
// placer.
func (s *sim) spawnDaemon() *daemon {
	d := &daemon{
		capacity: s.cfg.DaemonCapacity,
		alive:    true,
		sessions: make(map[int]struct{}),
	}
	d.idx = s.pl.Add(broker.Endpoint{Name: fmt.Sprintf("sim-%d", len(s.daemons))})
	s.daemons = append(s.daemons, d)
	s.alive++
	if s.alive > s.peak {
		s.peak = s.alive
	}
	return d
}

// expDur draws an exponential duration with the given mean.
func (s *sim) expDur(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(-math.Log(1-rng.Float64()) * float64(mean))
}

// interarrival draws the next arrival gap at the current phase rate.
func (s *sim) interarrival() time.Duration {
	rate := s.cfg.Rate
	if s.cfg.Arrival == BurstyOnOff {
		if s.burstOn {
			rate *= s.cfg.BurstFactor
		} else {
			rate /= s.cfg.BurstFactor
		}
	}
	return s.expDur(s.arrRNG, time.Duration(float64(time.Second)/rate))
}

// togglePhase flips the bursty process's ON/OFF phase.
func (s *sim) togglePhase() {
	if s.stopped || s.created >= s.cfg.Sessions {
		return
	}
	s.burstOn = !s.burstOn
	mean := s.cfg.BurstOnMean
	if !s.burstOn {
		mean = s.cfg.BurstOffMean
	}
	s.loop.At(s.expDur(s.phaseRNG, mean), s.togglePhase)
}

// pickClass draws a class index by weight.
func (s *sim) pickClass() int {
	u := s.classRNG.Float64() * s.totalWeight
	for i, cl := range s.cfg.Classes {
		if u < cl.Weight {
			return i
		}
		u -= cl.Weight
	}
	return len(s.cfg.Classes) - 1
}

// pastDeadline stops the clock once MaxDuration is reached. The deadline
// is checked at event time rather than scheduled as an event of its own,
// so a run that drains early ends at its last real event, not at the
// deadline.
func (s *sim) pastDeadline() bool {
	if s.stopped {
		return true
	}
	if s.loop.Now() >= s.cfg.MaxDuration {
		s.stopped = true
		s.loop.Stop()
		return true
	}
	return false
}

// arrive creates one session, queues it, and schedules the next arrival.
func (s *sim) arrive() {
	if s.pastDeadline() {
		return
	}
	ci := s.pickClass()
	cl := s.cfg.Classes[ci]
	sess := &session{
		class:    ci,
		durable:  cl.Durable,
		enqueued: s.loop.Now(),
		hold:     s.expDur(s.holdRNG, cl.HoldMean),
		daemon:   -1,
	}
	id := len(s.sessions)
	s.sessions = append(s.sessions, sess)
	s.pending = append(s.pending, id)
	s.created++
	s.classN[ci]++
	if s.created < s.cfg.Sessions {
		s.loop.At(s.interarrival(), s.arrive)
	}
	s.drain()
}

// queued returns the number of sessions waiting for placement.
func (s *sim) queued() int {
	return (len(s.retry) - s.retryHead) + (len(s.pending) - s.pendingHead)
}

// nextQueued pops the next waiting session id, failover retries first.
func (s *sim) nextQueued() (int, bool) {
	if s.retryHead < len(s.retry) {
		id := s.retry[s.retryHead]
		s.retryHead++
		return id, true
	}
	if s.pendingHead < len(s.pending) {
		id := s.pending[s.pendingHead]
		s.pendingHead++
		return id, true
	}
	return 0, false
}

// drain places queued sessions until the queue empties or no daemon can
// take the head-of-line session.
func (s *sim) drain() {
	for s.queued() > 0 {
		// Peek, don't pop: a session that cannot place stays at the head.
		var id int
		if s.retryHead < len(s.retry) {
			id = s.retry[s.retryHead]
		} else {
			id = s.pending[s.pendingHead]
		}
		if !s.place(id) {
			return
		}
		s.nextQueued()
	}
}

// place attempts one placement through the Placer, mirroring Pool.open:
// full daemons spill to the next-best, dead daemons are marked down and
// skipped. It reports whether the session landed.
// classIndex maps a wire scheduling-class code to its gauge row, folding
// unspecified into batch the way a scheduler-enabled daemon does.
func classIndex(class uint32) int {
	if class == protocol.SchedClassUnspecified {
		class = protocol.SchedClassBatch
	}
	return int(class - 1)
}

func (s *sim) place(id int) bool {
	sess := s.sessions[id]
	spec := broker.JobSpec{Class: s.cfg.Classes[sess.class].SchedClass}
	var exclude map[int]bool
	for {
		idx, ok := s.pl.Pick(spec, exclude)
		if !ok {
			return false
		}
		d := s.daemons[idx]
		switch {
		case !d.alive:
			s.pl.NoteFailure(idx, errDaemonDown)
		case d.live >= d.capacity:
			s.pl.NoteSpill()
		default:
			d.live++
			d.classLive[classIndex(spec.Class)]++
			d.sessions[id] = struct{}{}
			sess.daemon = idx
			sess.epoch++
			s.live++
			s.placed++
			s.pl.NotePlaced(idx)
			w := s.loop.Now() - sess.enqueued
			s.wait.Record(w)
			s.classWait[sess.class].Record(w)
			epoch := sess.epoch
			s.loop.At(sess.hold, func() { s.complete(id, epoch) })
			return true
		}
		if exclude == nil {
			exclude = make(map[int]bool)
		}
		exclude[idx] = true
	}
}

// complete finishes a session's hold, unless a failover made this event
// stale.
func (s *sim) complete(id, epoch int) {
	if s.stopped {
		return
	}
	sess := s.sessions[id]
	if sess.epoch != epoch || sess.daemon < 0 {
		return
	}
	d := s.daemons[sess.daemon]
	d.live--
	d.classLive[classIndex(s.cfg.Classes[sess.class].SchedClass)]--
	delete(d.sessions, id)
	sess.daemon = -1
	sess.epoch++
	s.live--
	s.completed++
	s.drain()
}

// kill crashes a daemon: durable sessions re-enter the queue for failover,
// non-durable ones are lost with it. The daemon never recovers (the
// autoscaler, when enabled, replaces it).
func (s *sim) kill(d *daemon) {
	if !d.alive {
		return
	}
	d.alive = false
	s.alive--
	s.pl.NoteFailure(d.idx, errDaemonDown)
	ids := make([]int, 0, len(d.sessions))
	for id := range d.sessions {
		ids = append(ids, id)
	}
	sort.Ints(ids) // map order is not deterministic; replay order must be
	for _, id := range ids {
		sess := s.sessions[id]
		sess.daemon = -1
		sess.epoch++
		s.live--
		if sess.durable {
			sess.enqueued = s.loop.Now()
			s.retry = append(s.retry, id)
			s.pl.NoteFailover()
		} else {
			s.lostNonDurable++
		}
	}
	d.live = 0
	d.classLive = [protocol.SchedClassBestEffort]int{}
	d.sessions = make(map[int]struct{})
}

// workRemains reports whether the run still has arrivals, live sessions,
// or queued sessions — the condition for keeping periodic ticks alive.
func (s *sim) workRemains() bool {
	return !s.stopped && (s.created < s.cfg.Sessions || s.live > 0 || s.queued() > 0)
}

// probeTick refreshes every daemon's gauges through the placer — the same
// NoteProbe path a live pool's prober uses — consulting the fault plan per
// daemon, then feeds the autoscaler one observation.
func (s *sim) probeTick() {
	if s.pastDeadline() {
		return
	}
	for _, d := range s.daemons {
		if d.retired {
			continue
		}
		var dec faults.Decision
		if s.cfg.FaultPlan != nil {
			dec = s.cfg.FaultPlan.Next(faults.DirAny)
			if dec.Kind != faults.KindNone {
				s.faults++
			}
		}
		switch dec.Kind {
		case faults.KindReset, faults.KindTruncate:
			s.kill(d)
			continue
		case faults.KindStall:
			// The daemon went silent for this probe: marked down until the
			// next clean probe marks it back up — one flap.
			s.pl.NoteProbe(d.idx, nil, errDaemonStalled)
			continue
		case faults.KindLatency:
			// The probe straggles past the tick: gauges stay stale.
			continue
		}
		if !d.alive {
			s.pl.NoteProbe(d.idx, nil, errDaemonDown)
			continue
		}
		reply := &protocol.StatsReply{SessionsLive: uint32(d.live)}
		if s.classed {
			// A scheduler-enabled daemon answers with the per-class block;
			// the sim daemon reports its class gauges the same way so the
			// class-aware policy has real headroom signals to rank.
			reply.HasClasses = true
			for ci, n := range d.classLive {
				reply.Classes[ci] = protocol.ClassLoad{Sessions: uint32(n)}
			}
		}
		s.pl.NoteProbe(d.idx, reply, nil)
	}
	if s.scaler != nil {
		demand := s.live + s.queued()
		delta, _ := s.scaler.Observe(s.loop.Now(), demand, s.alive)
		if delta > 0 {
			s.drain()
		}
	}
	// A dead fleet with no autoscaler can still recover nothing; keep
	// ticking only while ticks can matter.
	if s.workRemains() {
		s.loop.At(s.cfg.ProbeEvery, s.probeTick)
	}
	s.drain()
}

// sampleTick records one trajectory point.
func (s *sim) sampleTick() {
	if s.pastDeadline() {
		return
	}
	s.trajectory = append(s.trajectory, Sample{
		At:      s.loop.Now(),
		Daemons: s.alive,
		Live:    s.live,
		Queued:  s.queued(),
	})
	if s.workRemains() {
		s.loop.At(s.cfg.SampleEvery, s.sampleTick)
	}
}

// scaleDriver adapts the sim to broker.ScaleDriver. Retire drains the
// least-loaded drainable daemon by live-migrating its resident durable
// sessions onto peers with spare capacity — sessions keep running through
// the move, with no re-queue and no failover. A daemon holding any
// non-durable session (nothing to checkpoint) vetoes, as does a fleet with
// too little spare capacity to absorb the residents; either way scale-down
// cannot strand work by construction.
type scaleDriver sim

func (sd *scaleDriver) Spawn() error {
	s := (*sim)(sd)
	s.spawnDaemon()
	return nil
}

func (sd *scaleDriver) Retire() (bool, error) {
	s := (*sim)(sd)
	src := s.retireCandidate()
	if src == nil || !s.drainByMigration(src) {
		return false, nil
	}
	src.retired = true
	src.alive = false
	s.alive--
	s.pl.Retire(src.idx)
	return true, nil
}

// retireCandidate picks the daemon to drain: the alive, unretired daemon
// with the fewest resident sessions whose residents are all durable (a
// non-durable session dies with its daemon and so pins it) and whose
// residents the rest of the fleet has spare capacity to absorb. Nil means
// every candidate vetoes.
func (s *sim) retireCandidate() *daemon {
	var best *daemon
	spare := 0
	for _, d := range s.daemons {
		if d.alive && !d.retired {
			spare += d.capacity - d.live
		}
	}
	for _, d := range s.daemons {
		if !d.alive || d.retired {
			continue
		}
		if best != nil && d.live >= best.live {
			continue
		}
		drainable := spare-(d.capacity-d.live) >= d.live
		for id := range d.sessions {
			if !s.sessions[id].durable {
				drainable = false
				break
			}
		}
		if drainable {
			best = d
		}
	}
	return best
}

// drainByMigration live-migrates every resident session of src onto the
// peer with the most spare capacity, in session-id order so replays are
// deterministic. The sessions' hold timers keep running: a migration is
// invisible to the session, there is no re-queue and no replay. Reports
// whether src ended empty.
func (s *sim) drainByMigration(src *daemon) bool {
	ids := make([]int, 0, len(src.sessions))
	for id := range src.sessions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		var dest *daemon
		for _, d := range s.daemons {
			if d == src || !d.alive || d.retired || d.live >= d.capacity {
				continue
			}
			if dest == nil || d.capacity-d.live > dest.capacity-dest.live {
				dest = d
			}
		}
		if dest == nil {
			return false // capacity shifted mid-drain; the caller vetoes
		}
		ci := classIndex(s.cfg.Classes[s.sessions[id].class].SchedClass)
		delete(src.sessions, id)
		src.live--
		src.classLive[ci]--
		dest.sessions[id] = struct{}{}
		dest.live++
		dest.classLive[ci]++
		s.sessions[id].daemon = dest.idx
		s.pl.NoteMigration(dest.idx, 0)
	}
	return true
}

// result assembles the Result snapshot.
func (s *sim) result(elapsed time.Duration) *Result {
	r := &Result{
		Seed:           s.cfg.Seed,
		Sessions:       s.cfg.Sessions,
		Arrival:        s.cfg.Arrival.String(),
		Policy:         s.cfg.Policy.String(),
		Placed:         s.placed,
		Completed:      s.completed,
		LostNonDurable: s.lostNonDurable,
		Unplaced:       s.queued(),
		Elapsed:        elapsed,
		QueueWaitP50:   s.wait.Percentile(50),
		QueueWaitP99:   s.wait.Percentile(99),
		QueueWaitMax:   s.wait.Max(),
		QueueWaitMean:  s.wait.Mean(),
		DaemonsFinal:   s.alive,
		PeakDaemons:    s.peak,
		Trajectory:     s.trajectory,
		Pool:           s.pl.Stats(),
		Faults:         s.faults,
	}
	if s.scaler != nil {
		r.Autoscaler = s.scaler.Stats()
	}
	if elapsed > 0 {
		r.PlacedPerSec = float64(s.placed) / elapsed.Seconds()
	}
	for i, cl := range s.cfg.Classes {
		h := s.classWait[i]
		r.Classes = append(r.Classes, ClassResult{
			Name:       cl.Name,
			Durable:    cl.Durable,
			Sessions:   int(s.classN[i]),
			SchedClass: cl.SchedClass,
			Placements: int64(h.N()),
			WaitP50:    h.Percentile(50),
			WaitP99:    h.Percentile(99),
			WaitMax:    h.Max(),
			WaitMean:   h.Mean(),
		})
	}
	return r
}
