// Package analysis is rcuda-vet: a suite of project-specific static
// analyzers that enforce invariants no generic linter knows about —
// byte-reproducible simulation from explicit seeds, a wire protocol whose
// encoders, decoders, and size accounting must agree per operation code,
// and broker/server hot paths that must never block on the network while
// holding a mutex. The analyzers are built on the standard library's
// go/ast, go/parser, and go/types only; packages are loaded through
// `go list -json -export` and type-checked against compiler export data,
// so the repo's stdlib-only rule holds (no golang.org/x/tools).
//
// Four analyzers ship today:
//
//   - seededrand: no global math/rand functions, and no wall-clock reads
//     (time.Now / time.Since / time.Until), in the deterministic packages
//     (des, netsim, loadgen, vclock, faults, cluster, broker). The only
//     sanctioned bridge to real time is vclock's Wall clock.
//   - wiremsg: every protocol message type with an Encode also declares
//     WireSize; every request type is producible by the DecodeRequest
//     chain; every response type has a Decode function; and the op-code
//     decode switch and Op.String cover every declared operation.
//   - locknet: no transport.Conn Send/Recv, endpoint dial, or sleep is
//     reachable while a sync.Mutex/RWMutex is held in internal/broker or
//     internal/rcuda.
//   - errcode: every protocol.Code* rejection constant is classified by
//     the client and mapped to a typed rcuda error.
//
// The driver (cmd/rcuda-vet) prints findings as
// "file:line:col: analyzer: message" and exits nonzero on any diagnostic.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and the message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run receives every loaded target
// package at once — several analyzers relate facts across packages (the
// protocol's constants against the client's handling of them) — and
// self-selects the packages it applies to.
type Analyzer struct {
	// Name tags diagnostics and selects the analyzer on the command line.
	Name string
	// Doc is the one-line description shown by rcuda-vet's usage text.
	Doc string
	// Run inspects the loaded packages and returns findings.
	Run func(u *Unit) []Diagnostic
}

// Unit is the loaded view of one rcuda-vet invocation: the target
// packages, sharing one file set.
type Unit struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// diag builds a Diagnostic at pos for analyzer name.
func (u *Unit) diag(name string, pos token.Pos, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      u.Fset.Position(pos),
		Analyzer: name,
		Message:  fmt.Sprintf(format, args...),
	}
}

// SortDiagnostics orders findings by file, line, column, analyzer, then
// message, so output is deterministic across runs and map iteration.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// pathMatches reports whether an import path is selected by pattern:
// either an exact match or a suffix match on a "/" boundary, so configs
// can name packages module-relative ("internal/des") and still work when
// the module path changes.
func pathMatches(importPath, pattern string) bool {
	if importPath == pattern {
		return true
	}
	if len(importPath) > len(pattern) &&
		importPath[len(importPath)-len(pattern):] == pattern &&
		importPath[len(importPath)-len(pattern)-1] == '/' {
		return true
	}
	return false
}

// matchesAny reports whether importPath is selected by any pattern.
func matchesAny(importPath string, patterns []string) bool {
	for _, p := range patterns {
		if pathMatches(importPath, p) {
			return true
		}
	}
	return false
}
