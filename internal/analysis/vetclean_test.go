package analysis

import "testing"

// TestVetClean is the repo-wide gate: the default analyzer suite must
// report zero findings over the whole module. A failure here means a
// determinism, wire-protocol, or lock-discipline invariant regressed; fix
// the code — there is no suppression mechanism.
func TestVetClean(t *testing.T) {
	ds, err := Vet(moduleRoot(t), []string{"./..."}, Analyzers(DefaultConfig()))
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range ds {
		t.Errorf("%s", d.String())
	}
}
