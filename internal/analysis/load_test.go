package analysis

import "testing"

// TestLoadProtocol smoke-tests the go list + export-data loading path on a
// real package with both stdlib and intra-module dependencies.
func TestLoadProtocol(t *testing.T) {
	u, err := Load(moduleRoot(t), "./internal/protocol", "./internal/broker")
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2", len(u.Pkgs))
	}
	for _, p := range u.Pkgs {
		if len(p.Files) == 0 || p.Types == nil {
			t.Fatalf("%s loaded without files or types", p.ImportPath)
		}
	}
	if got := u.Pkgs[0].Types.Name(); got != "protocol" {
		t.Fatalf("first package is %q, want protocol", got)
	}
}
