package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	// ImportPath is the package's full import path.
	ImportPath string
	// Dir is the directory holding the sources.
	Dir string
	// Files are the parsed non-test sources.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the resolved identifier uses, definitions, selections,
	// and expression types for Files.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir with the go tool, type-checks every matched
// (non-dependency-only) package from source against compiler export data,
// and returns them as a Unit. The go tool does the dependency compilation:
// `-export` populates each dependency's export-data file in the build
// cache, which the standard gc importer then reads through a lookup
// function — no golang.org/x/tools involved.
func Load(dir string, patterns ...string) (*Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			if lp.Error != nil {
				return nil, fmt.Errorf("analysis: %s: %s", lp.ImportPath, lp.Error.Err)
			}
			targets = append(targets, lp)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("analysis: no packages matched %v in %s", patterns, dir)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	u := &Unit{Fset: fset}
	for _, lp := range targets {
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		u.Pkgs = append(u.Pkgs, pkg)
	}
	return u, nil
}

// goList shells out to `go list -deps -export -json` and decodes the
// package stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// GOWORK=off keeps a workspace file outside the repo from dragging
	// foreign modules into the load.
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// typeCheck parses and type-checks one listed package.
func typeCheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
