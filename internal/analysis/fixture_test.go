package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture module under testdata/src holds known-bad sources; every
// expected diagnostic is marked in place with a comment of the form
//
//	// want <analyzer> "<message substring>"
//
// on the line the diagnostic must anchor to. Each fixture test runs one
// analyzer over its fixture packages and asserts an exact match: every
// diagnostic hits a want, every want is hit.

// fixtureDir is the root of the fixture module.
func fixtureDir(t *testing.T) string {
	t.Helper()
	return filepath.Join(moduleRoot(t), "internal", "analysis", "testdata", "src")
}

var wantRE = regexp.MustCompile(`// want (\w+) "([^"]*)"`)

type want struct {
	file    string
	line    int
	substr  string
	matched bool
}

// loadWants scans the named fixture packages for this analyzer's want
// comments.
func loadWants(t *testing.T, analyzer string, pkgs ...string) []*want {
	t.Helper()
	var out []*want
	for _, pkg := range pkgs {
		dir := filepath.Join(fixtureDir(t), pkg)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("reading fixture package %s: %v", pkg, err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("reading fixture %s: %v", path, err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m != nil && m[1] == analyzer {
					out = append(out, &want{file: path, line: i + 1, substr: m[2]})
				}
			}
		}
	}
	return out
}

// checkFixture runs one analyzer over the fixture packages and matches its
// diagnostics against the want comments.
func checkFixture(t *testing.T, a *Analyzer, pkgs ...string) {
	t.Helper()
	patterns := make([]string, len(pkgs))
	for i, pkg := range pkgs {
		patterns[i] = "./" + pkg
	}
	ds, err := Vet(fixtureDir(t), patterns, []*Analyzer{a})
	if err != nil {
		t.Fatalf("vetting fixture %v: %v", pkgs, err)
	}
	wants := loadWants(t, a.Name, pkgs...)
	for _, d := range ds {
		matched := false
		for _, w := range wants {
			if filepath.Clean(d.Pos.Filename) == w.file && d.Pos.Line == w.line &&
				strings.Contains(d.Message, w.substr) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s finding containing %q", w.file, w.line, a.Name, w.substr)
		}
	}
}

func TestSeededRandFixture(t *testing.T) {
	a := SeededRand(SeededRandConfig{
		Packages:  []string{"fixture/det"},
		WallTypes: map[string]string{"fixture/det": "Wall"},
	})
	checkFixture(t, a, "det")
}

func TestWireMsgFixture(t *testing.T) {
	a := WireMsg(WireMsgConfig{Package: "fixture/proto", ExemptOps: []string{"OpBoot"}})
	checkFixture(t, a, "proto")
}

func TestLockNetFixture(t *testing.T) {
	a := LockNet(LockNetConfig{
		Packages:      []string{"fixture/locked"},
		ConnPackage:   "fixture/transport",
		ConnInterface: "Conn",
		ConnMethods:   []string{"Send", "Recv"},
	})
	checkFixture(t, a, "locked")
}

// TestLockNetSchedFixture covers the scheduler-shaped violations: the
// queue lock serializes a device's dispatch, so sleeps and wire calls
// under it are flagged while the real grant shape (decide under the lock,
// close the grant channel outside it) passes clean.
func TestLockNetSchedFixture(t *testing.T) {
	a := LockNet(LockNetConfig{
		Packages:      []string{"fixture/schedq"},
		ConnPackage:   "fixture/transport",
		ConnInterface: "Conn",
		ConnMethods:   []string{"Send", "Recv"},
	})
	checkFixture(t, a, "schedq")
}

func TestErrCodeFixture(t *testing.T) {
	a := ErrCode(ErrCodeConfig{ProtocolPackage: "fixture/proto", ClientPackage: "fixture/client"})
	checkFixture(t, a, "proto", "client")
}
