package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// LockNetConfig selects the packages and the blocking surface for the
// locknet analyzer.
type LockNetConfig struct {
	// Packages are the hot-path packages (paths or suffixes) in which no
	// blocking network call may run while a mutex is held.
	Packages []string
	// ConnPackage and ConnInterface name the transport connection
	// interface whose methods block on the wire.
	ConnPackage   string
	ConnInterface string
	// ConnMethods are the blocking methods of that interface. Close is
	// deliberately absent: shutdown paths may close a connection under a
	// lock, and Close never waits for the peer.
	ConnMethods []string
}

// DefaultLockNetConfig guards the broker, the rcuda client/server, and the
// device scheduler: one probe or exchange stalled on the wire must never
// stall every placement or session behind a mutex, and the scheduler's
// queue lock serializes every tenant's dispatch — a sleep or wire call
// under it would stall the whole device.
func DefaultLockNetConfig() LockNetConfig {
	return LockNetConfig{
		Packages:      []string{"internal/broker", "internal/rcuda", "internal/sched"},
		ConnPackage:   "internal/transport",
		ConnInterface: "Conn",
		ConnMethods:   []string{"Send", "Recv"},
	}
}

// locknetName tags this analyzer's diagnostics.
const locknetName = "locknet"

// blockInfo records why a function blocks: either a direct blocking call
// (what + where) or a same-analysis-set callee that blocks.
type blockInfo struct {
	what string // human description of the blocking operation
	via  string // non-empty when reached through a callee: its name
}

// LockNet returns the locknet analyzer: within the configured packages no
// transport Send/Recv, endpoint dial, time.Sleep, or call that transitively
// reaches one may execute while a sync.Mutex or sync.RWMutex is held.
func LockNet(cfg LockNetConfig) *Analyzer {
	a := &Analyzer{
		Name: "locknet",
		Doc:  "no blocking transport I/O is reachable while a mutex is held in broker/rcuda hot paths",
	}
	a.Run = func(u *Unit) []Diagnostic {
		var pkgs []*Package
		for _, pkg := range u.Pkgs {
			if matchesAny(pkg.ImportPath, cfg.Packages) {
				pkgs = append(pkgs, pkg)
			}
		}
		if len(pkgs) == 0 {
			return nil
		}
		ln := &lockNet{cfg: cfg, unit: u, blocking: make(map[string]blockInfo)}
		// Pass 1: summarize every function's direct blocking calls and
		// same-set callees, then close transitively so a lock held around
		// a helper that probes the network is still caught.
		type funcSummary struct {
			pkg     *Package
			decl    *ast.FuncDecl
			name    string
			callees map[string]bool
		}
		var summaries []*funcSummary
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				for _, decl := range file.Decls {
					fd, ok := decl.(*ast.FuncDecl)
					if ok && fd.Body != nil {
						fs := &funcSummary{pkg: pkg, decl: fd, name: funcKey(pkg, fd), callees: make(map[string]bool)}
						ast.Inspect(fd.Body, func(n ast.Node) bool {
							// A function literal's body runs when the
							// closure runs (often another goroutine), not
							// when this function does.
							if _, isLit := n.(*ast.FuncLit); isLit {
								return false
							}
							call, ok := n.(*ast.CallExpr)
							if !ok {
								return true
							}
							if what := ln.directBlocking(pkg, call); what != "" {
								if _, seen := ln.blocking[fs.name]; !seen {
									ln.blocking[fs.name] = blockInfo{what: what}
								}
							}
							if callee := staticCallee(pkg, call); callee != nil {
								fs.callees[calleeKey(callee)] = true
							}
							return true
						})
						summaries = append(summaries, fs)
					}
				}
			}
		}
		for changed := true; changed; {
			changed = false
			for _, fs := range summaries {
				if _, done := ln.blocking[fs.name]; done {
					continue
				}
				for callee := range fs.callees {
					if bi, ok := ln.blocking[callee]; ok {
						ln.blocking[fs.name] = blockInfo{what: bi.what, via: callee}
						changed = true
						break
					}
				}
			}
		}
		// Pass 2: find critical sections and report blocking calls inside.
		var ds []Diagnostic
		for _, fs := range summaries {
			ds = append(ds, ln.checkFunc(fs.pkg, fs.decl)...)
		}
		return ds
	}
	return a
}

type lockNet struct {
	cfg  LockNetConfig
	unit *Unit
	// blocking maps a function key ("pkgpath.Name" / "pkgpath.Recv.Name")
	// to why it blocks.
	blocking map[string]blockInfo
}

// funcKey names a declared function for the cross-package summary table.
func funcKey(pkg *Package, fd *ast.FuncDecl) string {
	if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
		return calleeKey(fn)
	}
	return pkg.ImportPath + "." + fd.Name.Name
}

// calleeKey names a called function the same way funcKey names a declared
// one, so summaries line up across packages.
func calleeKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if nt, ok := t.(*types.Named); ok {
			return fn.Pkg().Path() + "." + nt.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// directBlocking classifies one call: a blocking transport method, a dial
// function, a net dial, or a sleep. It returns a human description, or ""
// when the call does not block on the network.
func (ln *lockNet) directBlocking(pkg *Package, call *ast.CallExpr) string {
	// Method calls on the transport connection interface.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
			if pathMatches(fn.Pkg().Path(), ln.cfg.ConnPackage) {
				if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
					for _, m := range ln.cfg.ConnMethods {
						if fn.Name() == m {
							return fmt.Sprintf("%s.%s.%s", fn.Pkg().Name(), ln.cfg.ConnInterface, m)
						}
					}
				}
			}
			// time.Sleep and net.Dial* block the calling goroutine.
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Sleep" {
					return "time.Sleep"
				}
			case "net":
				if fn.Name() == "Dial" || fn.Name() == "DialTimeout" {
					return "net." + fn.Name()
				}
			}
		}
	}
	if id, ok := call.Fun.(*ast.Ident); ok {
		if fn, ok := pkg.Info.Uses[id].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	}
	// A call to any value of type func(...) (transport.Conn, error) — an
	// endpoint dial hook — blocks on connection establishment.
	if tv, ok := pkg.Info.Types[call.Fun]; ok {
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok && sig.Results().Len() >= 1 {
			if ln.isConnType(sig.Results().At(0).Type()) {
				return "a dial function returning " + types.TypeString(sig.Results().At(0).Type(), nil)
			}
		}
	}
	return ""
}

// isConnType reports whether t is the configured transport connection
// interface.
func (ln *lockNet) isConnType(t types.Type) bool {
	nt, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := nt.Obj()
	return obj.Pkg() != nil && pathMatches(obj.Pkg().Path(), ln.cfg.ConnPackage) && obj.Name() == ln.cfg.ConnInterface
}

// checkFunc walks one function body tracking held mutexes and reports
// blocking calls inside critical sections.
func (ln *lockNet) checkFunc(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	var ds []Diagnostic
	held := make(map[string]bool)
	ln.checkBlock(pkg, fd.Body.List, held, &ds)
	return ds
}

// mutexLockCall decodes stmt as x.Lock/RLock/Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex and returns the receiver's printed form plus
// whether it acquires (true) or releases (false).
func (ln *lockNet) mutexLockCall(pkg *Package, call *ast.CallExpr) (recv string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	fn, isFn := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	return types.ExprString(sel.X), acquire, true
}

// checkBlock scans a statement list in order. Lock/Unlock pairs on the
// same printed receiver open and close critical sections; nested blocks
// and control-flow branches inherit a copy of the held set, so an early
// `mu.Unlock(); return` branch does not end the outer section.
func (ln *lockNet) checkBlock(pkg *Package, stmts []ast.Stmt, held map[string]bool, ds *[]Diagnostic) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if recv, acquire, ok := ln.mutexLockCall(pkg, call); ok {
					if acquire {
						held[recv] = true
					} else {
						delete(held, recv)
					}
					continue
				}
			}
		case *ast.DeferStmt:
			// `defer mu.Unlock()` keeps the mutex held for the remainder
			// of the function; scanning simply continues with it held.
			continue
		}
		if len(held) > 0 {
			ln.reportBlockingCalls(pkg, stmt, held, ds)
		}
		// Recurse into compound statements with a copy of the held set.
		for _, body := range nestedBlocks(stmt) {
			ln.checkBlock(pkg, body, copyHeld(held), ds)
		}
	}
}

// reportBlockingCalls flags blocking calls in the statement itself, not in
// nested blocks (those are scanned by the recursion with their own held
// copies).
func (ln *lockNet) reportBlockingCalls(pkg *Package, stmt ast.Stmt, held map[string]bool, ds *[]Diagnostic) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, isBlock := n.(*ast.BlockStmt); isBlock {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		what := ln.directBlocking(pkg, call)
		via := ""
		if what == "" {
			if callee := staticCallee(pkg, call); callee != nil {
				if bi, ok := ln.blocking[calleeKey(callee)]; ok {
					what, via = bi.what, calleeKey(callee)
				}
			}
		}
		if what == "" {
			return true
		}
		for mu := range held {
			msg := fmt.Sprintf("blocking %s while %s is held", what, mu)
			if via != "" {
				msg = fmt.Sprintf("call to %s blocks on %s while %s is held", via, what, mu)
			}
			*ds = append(*ds, ln.unit.diag(locknetName, call.Pos(), "%s; release the mutex around transport I/O", msg))
		}
		return true
	})
}

// nestedBlocks returns the statement lists nested inside stmt.
func nestedBlocks(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if s.Else != nil {
			out = append(out, nestedBlocks(s.Else)...)
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.LabeledStmt:
		out = append(out, nestedBlocks(s.Stmt)...)
	}
	return out
}

// copyHeld clones the held-mutex set for a nested scope.
func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}
