package analysis

import (
	"go/ast"
	"go/types"
)

// SeededRandConfig selects the deterministic packages and the sanctioned
// wall-clock bridge for the seededrand analyzer.
type SeededRandConfig struct {
	// Packages are the deterministic packages (exact import paths or
	// module-relative suffixes). Inside them every random draw must come
	// from an explicitly seeded *rand.Rand and no code may read the wall
	// clock.
	Packages []string
	// WallTypes maps a package (path or suffix) to the name of the one
	// type allowed to read the wall clock there — the designated bridge
	// between deterministic code and real time. Within that package, only
	// the type's methods and its New<Type> constructor may call time.Now,
	// time.Since, or time.Until.
	WallTypes map[string]string
}

// DefaultSeededRandConfig is the repo's determinism perimeter: every
// package whose results must be byte-reproducible from one master seed
// (the PR 7 seeding audit, now enforced mechanically). vclock.Wall is the
// sole sanctioned wall-clock bridge.
func DefaultSeededRandConfig() SeededRandConfig {
	return SeededRandConfig{
		Packages: []string{
			"internal/des",
			"internal/netsim",
			"internal/loadgen",
			"internal/vclock",
			"internal/faults",
			"internal/cluster",
			"internal/broker",
		},
		WallTypes: map[string]string{"internal/vclock": "Wall"},
	}
}

// bannedWallFuncs are the wall-clock reads seededrand rejects. time.Sleep
// is deliberately not listed: sleeping delays execution but never feeds a
// nondeterministic value into a result.
var bannedWallFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// allowedRandConstructors are the package-level math/rand (and
// math/rand/v2) functions that are fine in deterministic code: they build
// explicitly seeded generators rather than drawing from the global one.
var allowedRandConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
	// math/rand/v2 seeded source constructors.
	"NewPCG":     true,
	"NewChaCha8": true,
}

// SeededRand returns the seededrand analyzer: deterministic packages must
// draw randomness from explicitly seeded generators and must not read the
// wall clock.
func SeededRand(cfg SeededRandConfig) *Analyzer {
	a := &Analyzer{
		Name: "seededrand",
		Doc:  "deterministic packages use only seeded rand.Rand and never read the wall clock",
	}
	a.Run = func(u *Unit) []Diagnostic {
		var ds []Diagnostic
		for _, pkg := range u.Pkgs {
			if !matchesAny(pkg.ImportPath, cfg.Packages) {
				continue
			}
			wallType := ""
			for pat, typ := range cfg.WallTypes {
				if pathMatches(pkg.ImportPath, pat) {
					wallType = typ
				}
			}
			for _, file := range pkg.Files {
				ds = append(ds, seededRandFile(u, pkg, file, wallType)...)
			}
		}
		return ds
	}
	return a
}

// seededRandFile walks one file, tracking the enclosing function so the
// sanctioned wall-clock type's own methods stay exempt.
func seededRandFile(u *Unit, pkg *Package, file *ast.File, wallType string) []Diagnostic {
	var ds []Diagnostic
	for _, decl := range file.Decls {
		exemptWall := false
		if fd, ok := decl.(*ast.FuncDecl); ok && wallType != "" {
			exemptWall = wallClockFunc(fd, wallType)
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			qual, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pkg.Info.Uses[qual].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "math/rand", "math/rand/v2":
				obj := pkg.Info.Uses[sel.Sel]
				if _, isFunc := obj.(*types.Func); isFunc && !allowedRandConstructors[sel.Sel.Name] {
					ds = append(ds, u.diag("seededrand", sel.Pos(),
						"global %s.%s draws from the shared unseeded generator; use a rand.New(rand.NewSource(seed)) derived from the run's master seed",
						pn.Imported().Name(), sel.Sel.Name))
				}
			case "time":
				if bannedWallFuncs[sel.Sel.Name] && !exemptWall {
					ds = append(ds, u.diag("seededrand", sel.Pos(),
						"wall-clock time.%s in deterministic package %s; take time from a vclock.Clock or an explicit timestamp argument",
						sel.Sel.Name, pkg.Types.Name()))
				}
			}
			return true
		})
	}
	return ds
}

// wallClockFunc reports whether fd is part of the sanctioned wall-clock
// bridge: a method on the named type (value or pointer receiver) or its
// New<Type> constructor.
func wallClockFunc(fd *ast.FuncDecl, wallType string) bool {
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok && id.Name == wallType {
			return true
		}
		return false
	}
	return fd.Name.Name == "New"+wallType
}
