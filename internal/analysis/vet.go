package analysis

// Config bundles every analyzer's configuration; the zero value is not
// useful — start from DefaultConfig.
type Config struct {
	SeededRand SeededRandConfig
	WireMsg    WireMsgConfig
	LockNet    LockNetConfig
	ErrCode    ErrCodeConfig
}

// DefaultConfig returns the repo's enforced-invariant configuration.
func DefaultConfig() Config {
	return Config{
		SeededRand: DefaultSeededRandConfig(),
		WireMsg:    DefaultWireMsgConfig(),
		LockNet:    DefaultLockNetConfig(),
		ErrCode:    DefaultErrCodeConfig(),
	}
}

// Analyzers instantiates the full suite under cfg, in stable order.
func Analyzers(cfg Config) []*Analyzer {
	return []*Analyzer{
		SeededRand(cfg.SeededRand),
		WireMsg(cfg.WireMsg),
		LockNet(cfg.LockNet),
		ErrCode(cfg.ErrCode),
	}
}

// Vet loads patterns rooted at dir and runs the analyzers, returning the
// sorted findings. It is the programmatic form of `rcuda-vet ./...`; the
// command and the repo-wide cleanliness test share it.
func Vet(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	u, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var ds []Diagnostic
	for _, a := range analyzers {
		ds = append(ds, a.Run(u)...)
	}
	SortDiagnostics(ds)
	return ds, nil
}
