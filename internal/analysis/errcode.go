package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ErrCodeConfig selects the protocol and client packages for the errcode
// analyzer.
type ErrCodeConfig struct {
	// ProtocolPackage (path or suffix) declares the rejection code
	// constants: exported untyped/uint32 constants named Code*.
	ProtocolPackage string
	// ClientPackage (path or suffix) must classify every code: compare it
	// somewhere, and map the match to a typed sentinel error (a
	// package-level `var Err... = errors.New(...)`).
	ClientPackage string
}

// DefaultErrCodeConfig targets the repo's protocol and client packages.
func DefaultErrCodeConfig() ErrCodeConfig {
	return ErrCodeConfig{ProtocolPackage: "internal/protocol", ClientPackage: "internal/rcuda"}
}

// errcodeName tags this analyzer's diagnostics.
const errcodeName = "errcode"

// ErrCode returns the errcode analyzer: every protocol.Code* rejection
// constant must be handled by the client's code classification — compared
// in an if or switch whose matching branch surfaces a typed Err* sentinel.
// A server that learns a new way to say no must come with a client that
// understands the answer.
func ErrCode(cfg ErrCodeConfig) *Analyzer {
	a := &Analyzer{
		Name: "errcode",
		Doc:  "every protocol.Code* rejection constant maps to a typed client error",
	}
	a.Run = func(u *Unit) []Diagnostic {
		var proto, client *Package
		for _, pkg := range u.Pkgs {
			if pathMatches(pkg.ImportPath, cfg.ProtocolPackage) {
				proto = pkg
			}
			if pathMatches(pkg.ImportPath, cfg.ClientPackage) {
				client = pkg
			}
		}
		if proto == nil || client == nil {
			return nil
		}
		return errCodeCheck(u, proto, client)
	}
	return a
}

func errCodeCheck(u *Unit, proto, client *Package) []Diagnostic {
	// The rejection constants, by (package path, name) so objects resolve
	// across the export-data / source boundary.
	codes := make(map[string]*types.Const)
	scope := proto.Types.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && c.Exported() && strings.HasPrefix(name, "Code") {
			codes[name] = c
		}
	}
	if len(codes) == 0 {
		return nil
	}

	compared := make(map[string]bool) // code name -> seen in a comparison
	mapped := make(map[string]bool)   // code name -> comparison branch surfaces a typed error

	// resolveCode returns the Code* constant name behind an expression, if
	// any. The client sees the constants through export data, so match by
	// package path + name rather than object identity.
	resolveCode := func(e ast.Expr) string {
		var obj types.Object
		switch e := e.(type) {
		case *ast.Ident:
			obj = client.Info.Uses[e]
		case *ast.SelectorExpr:
			obj = client.Info.Uses[e.Sel]
		}
		c, ok := obj.(*types.Const)
		if !ok || c.Pkg() == nil || c.Pkg().Path() != proto.ImportPath {
			return ""
		}
		if _, isCode := codes[c.Name()]; !isCode {
			return ""
		}
		return c.Name()
	}

	// branchHasTypedError reports whether the branch references a
	// package-level error sentinel of the client package (an Err* var of
	// type error).
	branchHasTypedError := func(stmts []ast.Stmt) bool {
		found := false
		for _, s := range stmts {
			ast.Inspect(s, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || found {
					return !found
				}
				v, ok := client.Info.Uses[id].(*types.Var)
				if ok && v.Pkg() == client.Types && v.Parent() == client.Types.Scope() &&
					strings.HasPrefix(v.Name(), "Err") && types.Identical(v.Type(), errorType) {
					found = true
				}
				return !found
			})
		}
		return found
	}

	// note records one comparison of a code constant and whether its
	// controlled branch maps to a typed error.
	note := func(name string, branch []ast.Stmt) {
		compared[name] = true
		if branch != nil && branchHasTypedError(branch) {
			mapped[name] = true
		}
	}

	for _, file := range client.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IfStmt:
				for _, name := range comparisonCodes(n.Cond, resolveCode) {
					note(name, n.Body.List)
				}
			case *ast.SwitchStmt:
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if n.Tag != nil {
							// Tagged switch: the case expression itself may
							// be the constant.
							if name := resolveCode(e); name != "" {
								note(name, cc.Body)
								continue
							}
						}
						for _, name := range comparisonCodes(e, resolveCode) {
							note(name, cc.Body)
						}
					}
				}
			}
			return true
		})
	}

	var names []string
	for name := range codes {
		names = append(names, name)
	}
	sort.Strings(names)
	var ds []Diagnostic
	for _, name := range names {
		switch {
		case !compared[name]:
			ds = append(ds, u.diag(errcodeName, codes[name].Pos(),
				"%s.%s is never classified by package %s; a client cannot distinguish this rejection",
				proto.Types.Name(), name, client.Types.Name()))
		case !mapped[name]:
			ds = append(ds, u.diag(errcodeName, codes[name].Pos(),
				"%s.%s is compared by package %s but no branch maps it to a typed Err* sentinel",
				proto.Types.Name(), name, client.Types.Name()))
		}
	}
	return ds
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// comparisonCodes extracts the Code* constant names compared for equality
// (or inequality) anywhere in a boolean expression.
func comparisonCodes(e ast.Expr, resolve func(ast.Expr) string) []string {
	var out []string
	ast.Inspect(e, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		if b.Op == token.EQL || b.Op == token.NEQ {
			if name := resolve(b.X); name != "" {
				out = append(out, name)
			}
			if name := resolve(b.Y); name != "" {
				out = append(out, name)
			}
		}
		return true
	})
	return out
}
