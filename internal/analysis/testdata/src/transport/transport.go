// Package transport is the fixture stand-in for the real transport
// package: it declares the connection interface whose Send/Recv methods
// the locknet analyzer treats as blocking.
package transport

// Conn is a blocking wire connection.
type Conn interface {
	Send(b []byte) error
	Recv() ([]byte, error)
	Close() error
}
