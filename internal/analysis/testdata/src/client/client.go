// Package client is the errcode fixture: it classifies some of proto's
// rejection codes but deliberately not all — the gaps are flagged at the
// constant declarations in package proto.
package client

import (
	"errors"

	"fixture/proto"
)

// ErrBusy is the typed form of proto.CodeBusy.
var ErrBusy = errors.New("client: server busy")

// Classify maps a rejection code to a typed error. CodeBusy maps to the
// ErrBusy sentinel; CodeLost is compared but only wrapped in an ad-hoc
// error; CodeIgnored is never looked at.
func Classify(code uint32) error {
	if code == proto.CodeBusy {
		return ErrBusy
	}
	if code == proto.CodeLost {
		return errors.New("client: session lost")
	}
	return nil
}
