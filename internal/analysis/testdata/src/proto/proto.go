// Package proto is the wiremsg and errcode fixture: a miniature wire
// protocol with deliberate gaps, each marked by a want comment.
package proto

import "errors"

// Op identifies a request on the wire.
type Op uint8

// Declared operation codes. OpBoot is exempt in the fixture configuration
// (positional, never carries an op byte); OpGap and OpNoName carry
// deliberate gaps.
const (
	OpPing   Op = iota + 1
	OpGap       // want wiremsg "op OpGap is declared but never dispatched"
	OpNoName    // want wiremsg "op OpNoName has no Op.String name"
	OpBoot
)

// String names ops for logs; OpNoName is deliberately missing.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "Ping"
	case OpGap:
		return "Gap"
	case OpBoot:
		return "Boot"
	}
	return "Op(?)"
}

// Rejection codes carried in reply frames.
const (
	// CodeBusy is classified by the fixture client and mapped to ErrBusy.
	CodeBusy uint32 = 1001
	// CodeLost is compared by the client but mapped to no sentinel.
	CodeLost uint32 = 1002 // want errcode "no branch maps it to a typed Err"
	// CodeIgnored is never classified at all.
	CodeIgnored uint32 = 1003 // want errcode "never classified"
)

// Message is one wire message: encodable with a declared size.
type Message interface {
	Encode(dst []byte) []byte
	WireSize() int
}

// Request is a client-to-server message.
type Request interface {
	Message
	Op() Op
}

// PingRequest is fully wired: dispatched, decodable, sized.
type PingRequest struct{}

func (r *PingRequest) Encode(dst []byte) []byte { return append(dst, byte(OpPing)) }
func (r *PingRequest) WireSize() int            { return 1 }
func (r *PingRequest) Op() Op                   { return OpPing }

// NoNameRequest is the OpNoName request; the op lacks only a String name.
type NoNameRequest struct{}

func (r *NoNameRequest) Encode(dst []byte) []byte { return append(dst, byte(OpNoName)) }
func (r *NoNameRequest) WireSize() int            { return 1 }
func (r *NoNameRequest) Op() Op                   { return OpNoName }

// OrphanRequest has an encoder but the decode chain never builds one.
type OrphanRequest struct{} // want wiremsg "DecodeRequest chain never constructs it"

func (r *OrphanRequest) Encode(dst []byte) []byte { return append(dst, byte(OpGap)) }
func (r *OrphanRequest) WireSize() int            { return 1 }
func (r *OrphanRequest) Op() Op                   { return OpGap }

// PongReply is a fully wired response.
type PongReply struct{ N uint32 }

func (r *PongReply) Encode(dst []byte) []byte { return append(dst, byte(r.N)) }
func (r *PongReply) WireSize() int            { return 1 }

// DecodePongReply parses a PongReply frame.
func DecodePongReply(b []byte) (*PongReply, error) {
	if len(b) != 1 {
		return nil, errors.New("proto: bad PongReply")
	}
	return &PongReply{N: uint32(b[0])}, nil
}

// LostReply has an encoder but no decoder at all.
type LostReply struct{} // want wiremsg "no DecodeLostReply/TryDecodeLostReply function"

func (r *LostReply) Encode(dst []byte) []byte { return dst }
func (r *LostReply) WireSize() int            { return 0 }

// NakedMsg encodes but never declares its wire size.
type NakedMsg struct{} // want wiremsg "Encode method but no WireSize"

func (m *NakedMsg) Encode(dst []byte) []byte { return dst }

// DecodeRequest parses one request frame: the op byte selects the type.
func DecodeRequest(b []byte) (Request, error) {
	if len(b) == 0 {
		return nil, errors.New("proto: empty frame")
	}
	op := Op(b[0])
	switch op {
	case OpPing:
		return &PingRequest{}, nil
	}
	return decodeMore(op, b)
}

// decodeMore extends the dispatch for later protocol revisions, so the
// analyzer must follow same-package static calls.
func decodeMore(op Op, b []byte) (Request, error) {
	if op != OpNoName {
		return nil, errors.New("proto: unknown op " + op.String())
	}
	return &NoNameRequest{}, nil
}
