// Package locked is the locknet fixture: critical sections that perform
// blocking wire I/O, each violation marked by a want comment, plus clean
// shapes that must not be flagged.
package locked

import (
	"sync"
	"time"

	"fixture/transport"
)

type pool struct {
	mu   sync.Mutex
	conn transport.Conn
	dial func() (transport.Conn, error)
}

// BadSend sends on the wire while holding the mutex.
func (p *pool) BadSend() {
	p.mu.Lock()
	_ = p.conn.Send(nil) // want locknet "blocking transport.Conn.Send while p.mu is held"
	p.mu.Unlock()
}

// BadDefer holds the mutex via defer across a receive.
func (p *pool) BadDefer() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn.Recv() // want locknet "blocking transport.Conn.Recv while p.mu is held"
}

// probe is a helper that blocks on the wire; callers must not hold locks.
func (p *pool) probe() {
	_, _ = p.conn.Recv()
}

// BadTransitive reaches the wire through a helper call under the mutex.
func (p *pool) BadTransitive() {
	p.mu.Lock()
	p.probe() // want locknet "call to fixture/locked.pool.probe blocks on transport.Conn.Recv while p.mu is held"
	p.mu.Unlock()
}

// BadDial invokes the endpoint dial hook while holding the mutex.
func (p *pool) BadDial() {
	p.mu.Lock()
	c, err := p.dial() // want locknet "dial function returning fixture/transport.Conn while p.mu is held"
	if err == nil {
		p.conn = c
	}
	p.mu.Unlock()
}

// BadSleep sleeps inside the critical section.
func (p *pool) BadSleep() {
	p.mu.Lock()
	defer p.mu.Unlock()
	time.Sleep(time.Millisecond) // want locknet "blocking time.Sleep while p.mu is held"
}

// GoodUnlockFirst snapshots state under the mutex and performs the wire
// exchange after releasing it — the pattern the analyzer demands.
func (p *pool) GoodUnlockFirst() {
	p.mu.Lock()
	conn := p.conn
	p.mu.Unlock()
	_ = conn.Send(nil)
}

// GoodAsync starts the wire work on another goroutine; the closure body
// does not run under this function's critical section.
func (p *pool) GoodAsync() {
	p.mu.Lock()
	defer p.mu.Unlock()
	go func() { _, _ = p.conn.Recv() }()
}

// GoodClose may close under the mutex: Close never waits for the peer.
func (p *pool) GoodClose() {
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = p.conn.Close()
}
