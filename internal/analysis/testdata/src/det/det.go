// Package det is a seededrand fixture: a nominally deterministic package
// with deliberate violations, each marked by a want comment.
package det

import (
	"math/rand"
	"time"
)

// Bad draws from the global generator and reads the wall clock.
func Bad() int {
	n := rand.Intn(10) // want seededrand "global rand.Intn"
	t0 := time.Now()   // want seededrand "wall-clock time.Now"
	_ = time.Since(t0) // want seededrand "wall-clock time.Since"
	return n
}

// Good draws from an explicitly seeded generator; time.Sleep is allowed
// because it never feeds a nondeterministic value into a result.
func Good(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	time.Sleep(time.Millisecond)
	return r.Intn(10)
}

// Wall is the package's sanctioned wall-clock bridge.
type Wall struct{ start time.Time }

// NewWall is the bridge constructor and may read the wall clock.
func NewWall() *Wall { return &Wall{start: time.Now()} }

// Elapsed is a bridge method and may read the wall clock.
func (w *Wall) Elapsed() time.Duration { return time.Since(w.start) }
