// Package schedq is the locknet fixture for the device scheduler's lock
// discipline: the queue mutex serializes every tenant's dispatch, so a
// sleep or wire call held under it stalls the whole device. Violations are
// marked with want comments; the clean shapes mirror internal/sched's real
// grant path (decide under the lock, notify outside it).
package schedq

import (
	"sync"
	"time"

	"fixture/transport"
)

// queue is a toy WFQ queue: mu guards the waiter list, grants are
// delivered by closing a waiter's channel.
type queue struct {
	mu      sync.Mutex
	waiters []chan struct{}
	stats   transport.Conn
}

// BadSleepUnderLock backs off inside the critical section — every queued
// tenant on the device stalls for the whole sleep.
func (q *queue) BadSleepUnderLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	time.Sleep(time.Millisecond) // want locknet "blocking time.Sleep while q.mu is held"
}

// BadPublishUnderLock pushes per-class stats over the wire while holding
// the queue lock; a slow stats consumer would freeze scheduling.
func (q *queue) BadPublishUnderLock(frame []byte) {
	q.mu.Lock()
	_ = q.stats.Send(frame) // want locknet "blocking transport.Conn.Send while q.mu is held"
	q.mu.Unlock()
}

// drainAck waits for the stats peer's acknowledgement — a blocking helper.
func (q *queue) drainAck() {
	_, _ = q.stats.Recv()
}

// BadTransitiveUnderLock reaches the wire through the helper while the
// queue lock is held.
func (q *queue) BadTransitiveUnderLock() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.drainAck() // want locknet "call to fixture/schedq.queue.drainAck blocks on transport.Conn.Recv while q.mu is held"
}

// GoodGrantOutsideLock is the real grant shape: pick the next waiter under
// the lock, close its channel after releasing — the waiter may run
// arbitrary dispatch work without holding up the queue.
func (q *queue) GoodGrantOutsideLock() {
	q.mu.Lock()
	var grant chan struct{}
	if len(q.waiters) > 0 {
		grant = q.waiters[0]
		q.waiters = q.waiters[1:]
	}
	q.mu.Unlock()
	if grant != nil {
		close(grant)
	}
}

// GoodSnapshotThenPublish snapshots counters under the lock and publishes
// after releasing it.
func (q *queue) GoodSnapshotThenPublish() {
	q.mu.Lock()
	n := len(q.waiters)
	q.mu.Unlock()
	_ = q.stats.Send([]byte{byte(n)})
}
