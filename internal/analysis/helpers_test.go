package analysis

import (
	"path/filepath"
	"testing"
)

// moduleRoot locates the repository root (two levels above this package).
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}
