package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// WireMsgConfig selects the wire-protocol package and its exemptions for
// the wiremsg analyzer.
type WireMsgConfig struct {
	// Package is the wire-protocol package (path or suffix). It must
	// declare the Message and Request interfaces, the Op constant type,
	// and the DecodeRequest entry point.
	Package string
	// ExemptOps are operation codes that legitimately never travel as a
	// request's leading function identifier. OpInit is the repo's one
	// case: the initialization exchange is positional, so the init
	// decoder is keyed by connection state, not by op code.
	ExemptOps []string
}

// DefaultWireMsgConfig targets the repo's protocol package.
func DefaultWireMsgConfig() WireMsgConfig {
	return WireMsgConfig{Package: "internal/protocol", ExemptOps: []string{"OpInit"}}
}

// wiremsgName tags this analyzer's diagnostics.
const wiremsgName = "wiremsg"

// WireMsg returns the wiremsg analyzer. It enforces that the protocol's
// Encode/Decode/WireSize triples agree per message and that the op-code
// space is handled exhaustively:
//
//   - a type with an Encode method must declare WireSize;
//   - every request type (implements Request) must be producible by the
//     DecodeRequest chain;
//   - every other message type (responses, the positional init pair) must
//     have a Decode<Type> or TryDecode<Type> function;
//   - every declared op constant must be dispatched by the decode chain;
//   - every declared op constant must have an Op.String name.
func WireMsg(cfg WireMsgConfig) *Analyzer {
	a := &Analyzer{
		Name: "wiremsg",
		Doc:  "protocol Encode/Decode/WireSize triples agree and the op-code decode switch is exhaustive",
	}
	a.Run = func(u *Unit) []Diagnostic {
		for _, pkg := range u.Pkgs {
			if pathMatches(pkg.ImportPath, cfg.Package) {
				return wireMsgPackage(u, pkg, cfg)
			}
		}
		return nil
	}
	return a
}

func wireMsgPackage(u *Unit, pkg *Package, cfg WireMsgConfig) []Diagnostic {
	var ds []Diagnostic
	scope := pkg.Types.Scope()

	msgIface := namedInterface(scope, "Message")
	reqIface := namedInterface(scope, "Request")
	opType, _ := scope.Lookup("Op").(*types.TypeName)
	if msgIface == nil || reqIface == nil || opType == nil {
		ds = append(ds, u.diag(wiremsgName, pkg.Files[0].Package,
			"package %s does not declare the Message/Request interfaces and the Op type", pkg.ImportPath))
		return ds
	}

	exempt := make(map[string]bool, len(cfg.ExemptOps))
	for _, n := range cfg.ExemptOps {
		exempt[n] = true
	}

	// Every exported constant of type Op, in declaration order.
	var opConsts []*types.Const
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && c.Exported() &&
			types.Identical(c.Type(), opType.Type()) {
			opConsts = append(opConsts, c)
		}
	}
	sort.Slice(opConsts, func(i, j int) bool { return opConsts[i].Pos() < opConsts[j].Pos() })

	decls := funcDecls(pkg)
	chain := decodeChain(pkg, decls, "DecodeRequest", opType)
	if chain == nil {
		ds = append(ds, u.diag(wiremsgName, pkg.Files[0].Package,
			"package %s has no DecodeRequest entry point", pkg.ImportPath))
		return ds
	}

	handled, constructed := chainFacts(pkg, chain)

	// Op constants must be dispatched by the decode chain and named by
	// Op.String.
	named := stringNames(pkg, opType)
	for _, c := range opConsts {
		if !exempt[c.Name()] && !handled[c] {
			ds = append(ds, u.diag(wiremsgName, c.Pos(),
				"op %s is declared but never dispatched by the DecodeRequest chain", c.Name()))
		}
		if !named[c] {
			ds = append(ds, u.diag(wiremsgName, c.Pos(),
				"op %s has no Op.String name (add a switch case or an opNames map entry)", c.Name()))
		}
	}

	// Per-type triple checks.
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() {
			continue
		}
		nt, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		ptr := types.NewPointer(nt)
		hasEncode := hasMethodNamed(ptr, "Encode")
		hasWireSize := hasMethodNamed(ptr, "WireSize")
		if hasEncode && !hasWireSize {
			ds = append(ds, u.diag(wiremsgName, tn.Pos(),
				"%s has an Encode method but no WireSize; the Table I byte accounting requires both", name))
			continue
		}
		if !types.Implements(ptr, msgIface) {
			continue
		}
		if types.Implements(ptr, reqIface) {
			if !constructed[nt.Obj()] {
				ds = append(ds, u.diag(wiremsgName, tn.Pos(),
					"request %s has an encoder but the DecodeRequest chain never constructs it; a server cannot parse it", name))
			}
		} else if !hasDecoderFunc(scope, name) {
			ds = append(ds, u.diag(wiremsgName, tn.Pos(),
				"message %s has an encoder but no Decode%s/TryDecode%s function; a peer cannot parse it", name, name, name))
		}
	}
	return ds
}

// namedInterface resolves a package-scope interface type by name.
func namedInterface(scope *types.Scope, name string) *types.Interface {
	tn, ok := scope.Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := tn.Type().Underlying().(*types.Interface)
	return iface
}

// funcDecls maps each package-level function object to its declaration.
func funcDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// decodeChain returns the declarations reachable from the named entry
// point through same-package static calls: the full request-decode chain.
// Methods on the Op type itself (String and friends) are not followed —
// they classify or print op codes, they do not decode requests, and their
// own op switches must not count as dispatch.
func decodeChain(pkg *Package, decls map[*types.Func]*ast.FuncDecl, entry string, opType *types.TypeName) []*ast.FuncDecl {
	root, _ := pkg.Types.Scope().Lookup(entry).(*types.Func)
	if root == nil {
		return nil
	}
	seen := map[*types.Func]bool{root: true}
	work := []*types.Func{root}
	var chain []*ast.FuncDecl
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		fd := decls[fn]
		if fd == nil {
			continue
		}
		chain = append(chain, fd)
		ast.Inspect(fd, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(pkg, call)
			if callee == nil || callee.Pkg() != pkg.Types || seen[callee] || methodOf(callee, opType) {
				return true
			}
			seen[callee] = true
			work = append(work, callee)
			return true
		})
	}
	return chain
}

// methodOf reports whether fn is a method (value or pointer receiver) of
// the named type.
func methodOf(fn *types.Func, tn *types.TypeName) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.Identical(t, tn.Type())
}

// staticCallee resolves a call's target when it is a plain function or
// method reference.
func staticCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// chainFacts collects, over the decode chain, the op constants dispatched
// (switch cases and ==/!= comparisons) and the named types constructed by
// composite literals.
func chainFacts(pkg *Package, chain []*ast.FuncDecl) (handled map[*types.Const]bool, constructed map[*types.TypeName]bool) {
	handled = make(map[*types.Const]bool)
	constructed = make(map[*types.TypeName]bool)
	noteOp := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if c, ok := pkg.Info.Uses[id].(*types.Const); ok {
				handled[c] = true
			}
		}
	}
	for _, fd := range chain {
		ast.Inspect(fd, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CaseClause:
				for _, e := range n.List {
					noteOp(e)
				}
			case *ast.BinaryExpr:
				if n.Op.String() == "==" || n.Op.String() == "!=" {
					noteOp(n.X)
					noteOp(n.Y)
				}
			case *ast.CompositeLit:
				if tv, ok := pkg.Info.Types[n]; ok {
					if nt, ok := tv.Type.(*types.Named); ok {
						constructed[nt.Obj()] = true
					}
				}
			}
			return true
		})
	}
	return handled, constructed
}

// stringNames collects the op constants given a human name: switch cases
// inside Op.String plus keys of any map[Op]string literal in the package.
func stringNames(pkg *Package, opType *types.TypeName) map[*types.Const]bool {
	named := make(map[*types.Const]bool)
	note := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if c, ok := pkg.Info.Uses[id].(*types.Const); ok && types.Identical(c.Type(), opType.Type()) {
				named[c] = true
			}
		}
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.Name != "String" || d.Recv == nil {
					continue
				}
				ast.Inspect(d, func(n ast.Node) bool {
					if cc, ok := n.(*ast.CaseClause); ok {
						for _, e := range cc.List {
							note(e)
						}
					}
					return true
				})
			case *ast.GenDecl:
				ast.Inspect(d, func(n ast.Node) bool {
					cl, ok := n.(*ast.CompositeLit)
					if !ok {
						return true
					}
					tv, ok := pkg.Info.Types[cl]
					if !ok {
						return true
					}
					m, ok := tv.Type.Underlying().(*types.Map)
					if !ok || !types.Identical(m.Key(), opType.Type()) {
						return true
					}
					for _, el := range cl.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							note(kv.Key)
						}
					}
					return true
				})
			}
		}
	}
	return named
}

// hasMethodNamed reports whether the type's method set contains a method
// with the given name.
func hasMethodNamed(t types.Type, name string) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}

// hasDecoderFunc reports whether the package declares a decoder for the
// named message type: a function whose name begins Decode<Type> or
// TryDecode<Type>.
func hasDecoderFunc(scope *types.Scope, typeName string) bool {
	for _, name := range scope.Names() {
		if _, ok := scope.Lookup(name).(*types.Func); !ok {
			continue
		}
		if strings.HasPrefix(name, "Decode"+typeName) || strings.HasPrefix(name, "TryDecode"+typeName) {
			return true
		}
	}
	return false
}
